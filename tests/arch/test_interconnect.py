"""Unit tests for the 2D-mesh torus interconnect."""

import pytest

from repro.errors import ArchitectureError
from repro.arch.interconnect import TorusInterconnect


@pytest.fixture
def torus():
    return TorusInterconnect(4, 4)


class TestTopology:
    def test_indexing_roundtrip(self, torus):
        for index in range(16):
            row, col = torus.coords(index)
            assert torus.index(row, col) == index

    def test_every_tile_has_four_neighbors(self, torus):
        for index in range(16):
            assert len(torus.neighbors(index)) == 4

    def test_neighbor_symmetry(self, torus):
        for a in range(16):
            for b in torus.neighbors(a):
                assert a in torus.neighbors(b)

    def test_corner_wraps(self, torus):
        # Tile 0 = (0,0); torus neighbours: (3,0)=12, (1,0)=4, (0,3)=3, (0,1)=1.
        assert set(torus.neighbors(0)) == {12, 4, 3, 1}

    def test_no_self_neighbor(self, torus):
        for index in range(16):
            assert index not in torus.neighbors(index)

    def test_out_of_range_coords(self, torus):
        with pytest.raises(ArchitectureError):
            torus.coords(16)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ArchitectureError):
            TorusInterconnect(0, 4)


class TestDistance:
    def test_distance_zero_to_self(self, torus):
        for index in range(16):
            assert torus.distance(index, index) == 0

    def test_distance_one_to_neighbors(self, torus):
        for a in range(16):
            for b in torus.neighbors(a):
                assert torus.distance(a, b) == 1

    def test_distance_symmetric(self, torus):
        for a in range(16):
            for b in range(16):
                assert torus.distance(a, b) == torus.distance(b, a)

    def test_diameter_is_four(self, torus):
        diameter = max(torus.distance(a, b)
                       for a in range(16) for b in range(16))
        assert diameter == 4

    def test_wraparound_shortens_paths(self, torus):
        # (0,0) -> (0,3) is one hop on the torus, not three.
        assert torus.distance(0, 3) == 1

    def test_triangle_inequality(self, torus):
        for a in range(16):
            for b in range(16):
                for c in range(16):
                    assert (torus.distance(a, c)
                            <= torus.distance(a, b) + torus.distance(b, c))


class TestSmallTori:
    def test_2x2_dedupes_aliases(self):
        torus = TorusInterconnect(2, 2)
        # On 2x2, up == down and left == right.
        for index in range(4):
            assert len(torus.neighbors(index)) == 2

    def test_1x4_ring(self):
        torus = TorusInterconnect(1, 4)
        assert set(torus.neighbors(0)) == {1, 3}
