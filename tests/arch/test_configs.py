"""Table I regression tests: the four CM configurations."""

import pytest

from repro.errors import ArchitectureError
from repro.arch.configs import (
    CGRA_CONFIGS,
    EXPECTED_TOTALS,
    get_config,
    make_cgra,
)


class TestTableI:
    @pytest.mark.parametrize("name", sorted(CGRA_CONFIGS))
    def test_totals_match_paper(self, name):
        assert CGRA_CONFIGS[name].total_cm_words == EXPECTED_TOTALS[name]

    def test_hom64_uniform(self):
        assert all(pe.cm_depth == 64 for pe in CGRA_CONFIGS["HOM64"].tiles)

    def test_hom32_uniform(self):
        assert all(pe.cm_depth == 32 for pe in CGRA_CONFIGS["HOM32"].tiles)

    def test_het1_layout(self):
        het1 = CGRA_CONFIGS["HET1"]
        depths = [pe.cm_depth for pe in het1.tiles]
        assert depths[0:4] == [64] * 4      # tiles 1-4
        assert depths[4:8] == [32] * 4      # tiles 5-8
        assert depths[8:12] == [16] * 4     # tiles 9-12
        assert depths[12:16] == [32] * 4    # tiles 13-16

    def test_het2_layout(self):
        het2 = CGRA_CONFIGS["HET2"]
        depths = [pe.cm_depth for pe in het2.tiles]
        assert depths[0:4] == [64] * 4
        assert depths[4:8] == [32] * 4
        assert depths[8:16] == [16] * 8

    @pytest.mark.parametrize("name", sorted(CGRA_CONFIGS))
    def test_eight_lsu_tiles(self, name):
        assert CGRA_CONFIGS[name].lsu_tiles == tuple(range(8))

    def test_lookup_case_insensitive(self):
        assert get_config("het1") is CGRA_CONFIGS["HET1"]

    def test_unknown_config_rejected(self):
        with pytest.raises(ArchitectureError):
            get_config("HOM128")


class TestCGRAStructure:
    def test_tile_names_are_one_based(self):
        cgra = CGRA_CONFIGS["HOM64"]
        assert cgra.tile(0).name == "T1"
        assert cgra.tile(15).name == "T16"

    def test_candidate_tiles_for_memory_ops(self):
        cgra = CGRA_CONFIGS["HET2"]
        assert cgra.candidate_tiles(needs_lsu=True) == tuple(range(8))
        assert cgra.candidate_tiles(needs_lsu=False) == tuple(range(16))

    def test_custom_cgra(self):
        cgra = make_cgra("tiny", rows=2, cols=2, cm_depths=[8, 8, 8, 8],
                         lsu_tiles=(0,))
        assert cgra.n_tiles == 4
        assert cgra.total_cm_words == 32
        assert cgra.lsu_tiles == (0,)

    def test_mismatched_depths_rejected(self):
        with pytest.raises(ArchitectureError):
            make_cgra("bad", rows=2, cols=2, cm_depths=[8, 8, 8])

    def test_lsu_out_of_range_rejected(self):
        with pytest.raises(ArchitectureError):
            make_cgra("bad", rows=2, cols=2, cm_depths=[8] * 4,
                      lsu_tiles=(7,))
