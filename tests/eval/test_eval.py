"""Experiment-driver tests (small kernels, fast paths)."""


from repro.eval import normalize
from repro.eval.experiments import (
    cpu_point,
    execute_point,
    fig11_data,
    figure_specs,
    latency_figure_data,
    prefetch_points,
)
from repro.eval.reporting import render_fig11, render_table
from repro.mapping.flow import FlowOptions
from repro.runtime.sweep import PointSpec


class TestNormalize:
    def test_normalized(self):
        assert normalize.normalized(50, 100) == 0.5
        assert normalize.normalized(None, 100) == 0.0
        assert normalize.normalized(50, 0) == 0.0

    def test_speedup(self):
        assert normalize.speedup(100, 50) == 2.0
        assert normalize.speedup(100, None) == 0.0

    def test_gain(self):
        assert normalize.gain(10.0, 2.5) == 4.0


class TestPoints:
    def test_execute_point_verifies_and_caches(self):
        first = execute_point("dc_filter", "HET1", "full")
        second = execute_point("dc_filter", "HET1", "full")
        assert first is second
        assert first.mapped
        assert first.cycles > 0
        assert first.energy_uj > 0

    def test_cpu_point(self):
        cycles, energy = cpu_point("dc_filter")
        assert cycles > 0
        assert energy.total_uj > 0

    def test_memo_keyed_on_full_flow_options(self):
        """Custom-option callers must never get a stale variant-keyed
        point (and vice versa)."""
        default = execute_point("dc_filter", "HOM64", "basic")
        custom = execute_point("dc_filter", "HOM64", "basic",
                               options=FlowOptions.basic(seed=3))
        assert custom is not default
        # The custom entry memoises under its own key...
        assert execute_point("dc_filter", "HOM64", "basic",
                             options=FlowOptions.basic(seed=3)) is custom
        # ...and an explicit preset shares the named variant's entry.
        assert execute_point("dc_filter", "HOM64", "basic",
                             options=FlowOptions.basic()) is default
        assert execute_point("dc_filter", "HOM64", "basic") is default

    def test_memo_keyed_on_input_seed(self):
        default = execute_point("dc_filter", "HOM64", "basic")
        reseeded = execute_point("dc_filter", "HOM64", "basic", seed=8)
        assert reseeded is not default

    def test_prefetch_fills_the_memo(self):
        specs = [PointSpec("dc_filter", "HOM64", "basic"),
                 PointSpec("dc_filter", "HET1", "full")]
        prefetch_points(specs)
        assert prefetch_points(specs) == 0  # everything memoised
        assert execute_point("dc_filter", "HET1", "full").mapped

    def test_figure_specs_cover_the_drivers(self):
        specs = set(spec.resolve() for spec in figure_specs())
        # Baseline + the three context-aware variants everywhere...
        assert PointSpec("fir", "HOM64", "basic").resolve() in specs
        assert PointSpec("fft", "HET2", "full").resolve() in specs
        # ...but not the compile-time-only 'weighted' slice.
        assert all(spec.variant != "weighted" for spec in specs)

    def test_parallel_figure_matches_serial(self):
        serial = latency_figure_data("full", kernels=("dc_filter",),
                                     configs=("HOM64", "HET1"))
        from repro.eval.experiments import clear_cache
        clear_cache()
        parallel = latency_figure_data("full", kernels=("dc_filter",),
                                       configs=("HOM64", "HET1"),
                                       workers=2)
        assert serial == parallel


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_fig11_renders(self):
        text = render_fig11(fig11_data())
        assert "HOM64" in text
        assert "CPU" in text
