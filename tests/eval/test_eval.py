"""Experiment-driver tests (small kernels, fast paths)."""

import pytest

from repro.eval import normalize
from repro.eval.experiments import (
    cpu_point,
    execute_point,
    fig11_data,
)
from repro.eval.reporting import render_fig11, render_table


class TestNormalize:
    def test_normalized(self):
        assert normalize.normalized(50, 100) == 0.5
        assert normalize.normalized(None, 100) == 0.0
        assert normalize.normalized(50, 0) == 0.0

    def test_speedup(self):
        assert normalize.speedup(100, 50) == 2.0
        assert normalize.speedup(100, None) == 0.0

    def test_gain(self):
        assert normalize.gain(10.0, 2.5) == 4.0


class TestPoints:
    def test_execute_point_verifies_and_caches(self):
        first = execute_point("dc_filter", "HET1", "full")
        second = execute_point("dc_filter", "HET1", "full")
        assert first is second
        assert first.mapped
        assert first.cycles > 0
        assert first.energy_uj > 0

    def test_cpu_point(self):
        cycles, energy = cpu_point("dc_filter")
        assert cycles > 0
        assert energy.total_uj > 0


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_fig11_renders(self):
        text = render_fig11(fig11_data())
        assert "HOM64" in text
        assert "CPU" in text
