"""Acceptance-grade exploration runs on the real mapping pipeline.

Two claims from the issue, on real data:

- the exhaustive exploration of the Table I configurations puts the
  paper's heterogeneous designs (HET1/HET2) on the Pareto frontier
  for the context-hungry half of the kernel suite — the
  application-domain scoping the paper's whole argument is about;
- the adaptive strategy recovers ≥ 95% of the exhaustive frontier's
  hypervolume at ≤ 50% of its evaluated-point budget, on a smoke-
  sized row-banded space — the space class whose capacity bands give
  successive halving something to halve (a bare ladder deliberately
  degenerates; see :class:`repro.dse.strategies.AdaptiveStrategy`).
"""

import pytest

from repro.dse.pareto import hypervolume
from repro.dse.runner import (
    run_exploration,
    validated_exploration_config,
)
from repro.runtime.cache import ResultCache

#: The kernels whose large blocks are what HET1/HET2's deep tiles
#: exist for (Fig 2's heterogeneous context-usage motivation).
CONTEXT_HUNGRY = ("fir", "matmul", "nonsep_filter", "fft")


@pytest.mark.slow
class TestPaperOrdering:
    def test_het_configs_reach_the_frontier(self, tmp_path):
        config = validated_exploration_config(
            space=("table1",), kernels=CONTEXT_HUNGRY,
            strategy="exhaustive")
        result = run_exploration(config, workers=2,
                                 cache=ResultCache(tmp_path))
        assert result.spent == 16
        mappability = {outcome.design.name:
                       outcome.metrics["mappability"]
                       for outcome in result.outcomes}
        # The full aware flow maps the whole suite on every Table I
        # configuration (the paper's Fig 8).
        assert all(value == 1.0 for value in mappability.values())
        # The paper's headline: the heterogeneous provisionings are
        # Pareto-optimal for the domain they were sized for.
        assert {"het1", "het2"} <= set(result.frontier)


@pytest.mark.slow
class TestAdaptiveVersusExhaustive:
    def test_95_percent_hypervolume_at_half_the_budget(self,
                                                       tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(space=("rowband",), depths=(16, 32, 64),
                      kernels=("dc_filter", "fir", "convolution"))
        exhaustive = run_exploration(
            validated_exploration_config(strategy="exhaustive",
                                         **kwargs),
            workers=2, cache=cache)
        adaptive = run_exploration(
            validated_exploration_config(strategy="adaptive",
                                         **kwargs),
            workers=2, cache=cache)
        assert adaptive.spent <= exhaustive.spent / 2
        # Score both frontiers in the exhaustive run's reference box
        # — hypervolumes from different boxes do not compare.
        recovered = hypervolume(
            [outcome.vector for outcome in adaptive.outcomes
             if outcome.frontier],
            exhaustive.reference)
        assert recovered >= 0.95 * exhaustive.hypervolume
