"""``repro explore`` end to end (fake pipeline): determinism,
payload emission, shard prewarm, validation diagnostics."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(["explore", "--quiet", *argv])
    return code, capsys.readouterr().out


def run_json(capsys, *argv):
    code, out = run_cli(capsys, "--json", *argv)
    assert code == 0
    return json.loads(out)


SMALL = ("--space", "ladder", "--depths", "8,16,32,64",
         "--kernels", "fir,fft", "--no-cache")


class TestExploreCli:
    def test_table_output(self, fake_compute, capsys):
        code, out = run_cli(capsys, *SMALL)
        assert code == 0
        assert "frontier" in out
        assert "hypervolume" in out

    def test_json_document(self, fake_compute, capsys):
        payload = run_json(capsys, *SMALL)
        assert payload["kind"] == "exploration"
        assert payload["frontier"]

    def test_random_seed_determinism(self, fake_compute, capsys):
        """The ISSUE's check: `--strategy random --seed S` twice
        yields identical frontiers (and identical design metrics)."""
        argv = (*SMALL, "--strategy", "random", "--budget", "5",
                "--seed", "42")
        first = run_json(capsys, *argv)
        second = run_json(capsys, *argv)
        assert first["frontier"] == second["frontier"]
        strip = [{key: value for key, value in design.items()}
                 for design in first["designs"]]
        strip2 = [{key: value for key, value in design.items()}
                  for design in second["designs"]]
        assert strip == strip2

    def test_shard_prewarm_emits_mergeable_payload(self, fake_compute,
                                                   capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        payloads = []
        for index in range(2):
            payloads.append(run_json(
                capsys, "--space", "ladder", "--depths", "8,16",
                "--kernels", "fir,fft", "--shard", f"{index}/2"))
        from repro.runtime.shard import merge_sweep_payloads
        merged = merge_sweep_payloads(payloads)
        assert len(merged.points) == 4
        # The prewarm filled the shared cache: the exploration now
        # resolves entirely from hits.
        explored = run_json(capsys, "--space", "ladder", "--depths",
                            "8,16", "--kernels", "fir,fft")
        assert explored["summary"]["computed"] == 0
        assert explored["summary"]["cache_hits"] == 4

    @pytest.mark.parametrize("argv, diagnostic", [
        (("--strategy", "warp"), "unknown search strategy"),
        (("--objectives", "energy,karma"), "unknown objectives"),
        (("--kernels", "warp"), "unknown kernels"),
        (("--space", "warp"), "unknown design space"),
        (("--budget", "0"), "budget"),
        (("--depths", "8,"), "comma-separated integers"),
        (("--depths", "8,x"), "comma-separated integers"),
        (("--depths", "0,8"), "positive"),
    ])
    def test_validation_diagnostics(self, fake_compute, capsys,
                                    argv, diagnostic):
        code = main(["explore", "--quiet", "--no-cache", *argv])
        assert code == 1
        err = capsys.readouterr().err
        assert diagnostic in err

    def test_shard_without_durable_output_rejected(self, fake_compute,
                                                   capsys):
        code = main(["explore", "--quiet", "--no-cache",
                     "--shard", "0/2"])
        assert code == 1
        assert "discards all results" in capsys.readouterr().err

    def test_cache_balanced_shards_stay_union_complete(
            self, fake_compute, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        base = ("--space", "ladder", "--depths", "8,16,32,64",
                "--kernels", "fir,fft")
        # Cache-aware balancing is only coherent when every producer
        # sees the same cache state (the documented contract), so
        # warm the whole grid first; the balanced shards then carve
        # a stable cache and must still partition the grid.
        run_json(capsys, *base)
        payloads = [run_json(capsys, *base, "--shard", f"{index}/2",
                             "--cache-balanced")
                    for index in range(2)]
        from repro.runtime.shard import merge_sweep_payloads
        merged = merge_sweep_payloads(payloads)
        assert len(merged.points) == 8

    def test_cache_balanced_requires_the_cache(self, fake_compute,
                                               capsys):
        code = main(["explore", "--quiet", "--no-cache", "--json",
                     "--shard", "0/2", "--cache-balanced"])
        assert code == 1
        assert "drop --no-cache" in capsys.readouterr().err
