"""Property tests for Pareto dominance, frontiers and hypervolume.

The frontier contract (the ISSUE's three laws) is tested for *any*
vector set Hypothesis can dream up:

- no frontier point dominates another frontier point;
- every non-frontier point is dominated by some frontier point;
- the frontier is invariant under permutation of the input.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.pareto import (
    dominates,
    hypervolume,
    pareto_front,
    pareto_indices,
    reference_point,
)
from repro.errors import ReproError

COORDS = st.one_of(
    st.integers(-50, 50).map(float),
    st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
    st.just(math.inf),
)


def vector_lists(dims=None):
    dim = st.shared(st.integers(1, 4), key="dims") if dims is None \
        else st.just(dims)
    return dim.flatmap(lambda d: st.lists(
        st.tuples(*[COORDS] * d), min_size=1, max_size=24))


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_infinity_is_beatable(self):
        assert dominates((1.0, math.inf), (2.0, math.inf))
        assert not dominates((1.0, math.inf), (2.0, 5.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError, match="objective"):
            dominates((1.0,), (1.0, 2.0))


class TestFrontier:
    @settings(max_examples=120, deadline=None)
    @given(vectors=vector_lists())
    def test_no_frontier_point_dominates_another(self, vectors):
        front = [vectors[i] for i in pareto_indices(vectors)]
        assert front, "a non-empty set always has a frontier"
        for a in front:
            for b in front:
                assert not dominates(a, b)

    @settings(max_examples=120, deadline=None)
    @given(vectors=vector_lists())
    def test_every_other_point_is_dominated_by_the_frontier(
            self, vectors):
        chosen = set(pareto_indices(vectors))
        front = [vectors[i] for i in chosen]
        for i, vector in enumerate(vectors):
            if i not in chosen:
                assert any(dominates(f, vector) for f in front)

    @settings(max_examples=120, deadline=None)
    @given(data=st.data(), vectors=vector_lists())
    def test_permutation_invariant(self, data, vectors):
        permuted = data.draw(st.permutations(vectors))
        original = {vectors[i] for i in pareto_indices(vectors)}
        shuffled = {permuted[i] for i in pareto_indices(permuted)}
        assert original == shuffled

    def test_duplicates_of_a_frontier_point_all_survive(self):
        vectors = [(1.0, 2.0), (1.0, 2.0), (3.0, 3.0)]
        assert pareto_indices(vectors) == [0, 1]

    def test_nan_rejected(self):
        with pytest.raises(ReproError, match="NaN"):
            pareto_indices([(1.0, math.nan)])

    def test_pareto_front_with_key(self):
        items = [{"v": (2.0, 2.0)}, {"v": (1.0, 1.0)}]
        assert pareto_front(items, key=lambda x: x["v"]) \
            == [{"v": (1.0, 1.0)}]


class TestReferencePoint:
    def test_dominated_by_every_finite_vector(self):
        vectors = [(1.0, 10.0), (5.0, 2.0), (math.inf, 3.0)]
        reference = reference_point(vectors)
        for vector in vectors:
            if all(math.isfinite(v) for v in vector):
                assert dominates(vector, reference)

    def test_degenerate_axis_still_separates(self):
        reference = reference_point([(3.0, 5.0), (4.0, 5.0)])
        assert reference[1] > 5.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            reference_point([])


class TestHypervolume:
    def test_single_point_box(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 2.0)) \
            == pytest.approx(2.0)

    def test_union_not_sum(self):
        # Two overlapping boxes: union < sum of boxes.
        volume = hypervolume([(0.0, 1.0), (1.0, 0.0)], (2.0, 2.0))
        assert volume == pytest.approx(3.0)

    def test_point_outside_the_box_contributes_nothing(self):
        assert hypervolume([(5.0, 5.0)], (2.0, 2.0)) == 0.0
        assert hypervolume([(1.0, math.inf)], (2.0, 2.0)) == 0.0

    def test_three_dimensional(self):
        assert hypervolume([(0.0, 0.0, 0.0)], (2.0, 3.0, 4.0)) \
            == pytest.approx(24.0)

    @settings(max_examples=80, deadline=None)
    @given(data=st.data(), vectors=vector_lists())
    def test_permutation_invariant(self, data, vectors):
        reference = reference_point(vectors)
        permuted = data.draw(st.permutations(vectors))
        assert hypervolume(vectors, reference) \
            == pytest.approx(hypervolume(permuted, reference))

    @settings(max_examples=80, deadline=None)
    @given(vectors=vector_lists())
    def test_dominated_points_add_nothing(self, vectors):
        reference = reference_point(vectors)
        front = [vectors[i] for i in pareto_indices(vectors)]
        assert hypervolume(front, reference) \
            == pytest.approx(hypervolume(vectors, reference))

    @settings(max_examples=80, deadline=None)
    @given(vectors=vector_lists())
    def test_bounded_by_the_reference_box(self, vectors):
        reference = reference_point(vectors)
        finite = [v for v in vectors
                  if all(math.isfinite(x) for x in v)]
        if not finite:
            return
        box = 1.0
        for d, bound in enumerate(reference):
            box *= bound - min(v[d] for v in finite)
        volume = hypervolume(vectors, reference)
        assert 0.0 <= volume <= box + 1e-9 * abs(box)