"""The exploration engine over the fake pipeline: strategies, budget
accounting, caching, payload shape, frontier validity."""

import pytest

from repro.dse.pareto import dominates
from repro.dse.runner import (
    DSE_JSON_SCHEMA,
    exploration_grid_specs,
    run_exploration,
    validated_exploration_config,
)
from repro.errors import ReproError
from repro.runtime.cache import ResultCache


def config(**overrides):
    base = dict(space=("ladder",), depths=(8, 16, 32, 64),
                kernels=("fir", "fft"))
    base.update(overrides)
    return validated_exploration_config(**base)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(kernels=("warp",)),
        dict(variant="warp"),
        dict(strategy="warp"),
        dict(objectives=("energy", "karma")),
        dict(budget=0),
        dict(budget=True),
        dict(seed="seven"),
        dict(space=("warp",)),
    ])
    def test_bad_axes_rejected(self, bad):
        with pytest.raises(ReproError):
            config(**bad)

    def test_defaults(self):
        cfg = validated_exploration_config()
        assert cfg.strategy == "exhaustive"
        assert cfg.variant == "full"
        names = {design.name for design in cfg.designs}
        assert {"het1", "het2"} <= names

    def test_payload_seed_replays_the_same_tiles_space(self):
        # The documented reproduction path: re-submitting an
        # exploration with the seed its payload records must rebuild
        # the identical sampled space — including the default seed.
        first = validated_exploration_config(space=("tiles",))
        replay = validated_exploration_config(space=("tiles",),
                                              seed=first.seed)
        assert [d.cm_depths for d in first.designs] \
            == [d.cm_depths for d in replay.designs]

    def test_grid_is_design_major(self):
        cfg = config()
        specs = exploration_grid_specs(cfg)
        assert len(specs) == len(cfg.designs) * 2
        assert specs[0].kernel_name == "fir"
        assert specs[1].kernel_name == "fft"


class TestRun:
    def test_exhaustive_answers_everything(self, fake_compute):
        result = run_exploration(config())
        assert result.spent == len(result.config.designs) * 2
        assert all(outcome.complete for outcome in result.outcomes)
        assert result.frontier
        assert result.hypervolume > 0

    def test_frontier_is_valid(self, fake_compute):
        result = run_exploration(config())
        eligible = [o for o in result.outcomes
                    if o.complete and o.metrics["mappability"] > 0]
        front = [o for o in eligible if o.frontier]
        rest = [o for o in eligible if not o.frontier]
        for a in front:
            for b in front:
                assert not dominates(a.vector, b.vector)
        for outcome in rest:
            assert any(dominates(f.vector, outcome.vector)
                       for f in front)

    def test_budget_is_a_hard_cap(self, fake_compute):
        result = run_exploration(config(budget=3))
        assert result.spent == 3

    def test_cache_hits_count_against_the_budget(self, fake_compute,
                                                 tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_exploration(config(budget=5), cache=cache)
        warm = run_exploration(config(budget=5), cache=cache)
        assert cold.spent == warm.spent == 5
        assert warm.computed == 0
        assert warm.cache_hits == 5
        assert warm.frontier == cold.frontier

    def test_random_is_seed_deterministic(self, fake_compute):
        one = run_exploration(config(strategy="random", budget=4,
                                     seed=11))
        two = run_exploration(config(strategy="random", budget=4,
                                     seed=11))
        other = run_exploration(config(strategy="random", budget=4,
                                       seed=12))
        assert one.frontier == two.frontier
        assert [o.vector for o in one.outcomes] \
            == [o.vector for o in two.outcomes]
        # A different seed samples different designs (on this space).
        assert [o.evaluated for o in one.outcomes] \
            != [o.evaluated for o in other.outcomes]

    def test_adaptive_skips_static_pairs(self, fake_compute):
        # depth 1 and 2 rungs are statically unmappable for every
        # kernel (capacity bound), so adaptive must not pay for them.
        cfg = config(depths=(1, 2, 8, 16, 32, 64),
                     strategy="adaptive")
        result = run_exploration(cfg)
        by_name = {o.design.name: o for o in result.outcomes}
        assert by_name["hom1"].evaluated == 0
        assert by_name["hom1"].static_skips == 2
        assert by_name["hom1"].complete
        exhaustive = run_exploration(config(
            depths=(1, 2, 8, 16, 32, 64)))
        assert result.spent < exhaustive.spent

    def test_progress_callback_sees_every_evaluation(self,
                                                     fake_compute):
        updates = []
        result = run_exploration(config(), progress=updates.append)
        assert len(updates) == result.spent

    def test_crash_aborts_loudly(self, monkeypatch):
        from repro.runtime import pool
        from repro.runtime.sweep import ExperimentPoint

        def crashing(spec):
            return ExperimentPoint(spec.kernel_name, spec.config_name,
                                   spec.variant,
                                   error="ValueError: boom")

        monkeypatch.setattr(pool, "_compute_captured", crashing)
        with pytest.raises(ReproError, match="boom"):
            run_exploration(config())


class TestPayload:
    def test_shape_and_consistency(self, fake_compute):
        result = run_exploration(config(strategy="adaptive"))
        payload = result.payload()
        assert payload["schema"] == DSE_JSON_SCHEMA
        assert payload["kind"] == "exploration"
        assert payload["objectives"] == ["energy", "latency",
                                         "cm_area", "mappability"]
        assert payload["summary"]["designs"] == len(payload["designs"])
        assert payload["summary"]["frontier_size"] \
            == len(payload["frontier"])
        names = {design["name"] for design in payload["designs"]}
        assert set(payload["frontier"]) <= names
        for design in payload["designs"]:
            assert design["frontier"] == (design["name"]
                                          in payload["frontier"])
            assert set(design["kernels"]) == set(payload["kernels"])
        import json
        json.dumps(payload)  # must be JSON-serialisable as-is
