"""Design encodings, symmetry dedup, generators, static bounds."""

import pytest

from repro.arch.configs import EXPECTED_TOTALS
from repro.dse.space import (
    DEPTH_LADDER,
    Design,
    build_space,
    canonical_depths,
    column_banded_designs,
    dedupe_designs,
    homogeneous_designs,
    kernel_demand,
    ladder_grid_specs,
    ladder_spec,
    row_banded_designs,
    sampled_tile_designs,
    static_unmappable,
    table1_designs,
)
from repro.errors import ReproError


class TestDesign:
    def test_shape_validated(self):
        with pytest.raises(ReproError, match="CM depths"):
            Design("bad", (8, 8), rows=4, cols=4)

    def test_totals(self):
        design = Design("x", (8,) * 8 + (16,) * 8)
        assert design.total_words == 8 * 8 + 16 * 8
        # LSU tiles are the top two rows: indices 0..7, all depth 8.
        assert design.lsu_words == 64

    def test_spec_round_trip(self):
        design = Design("custom1", (16,) * 16)
        spec = design.spec("fir", variant="full").resolve()
        assert spec.cm_depths == design.cm_depths
        assert (spec.rows, spec.cols) == (4, 4)
        cgra = spec.build_cgra()
        assert cgra.total_cm_words == design.total_words

    def test_build_cgra_scaled_shape(self):
        design = Design("wide", (8,) * 16, rows=2, cols=8)
        cgra = design.build_cgra()
        assert (cgra.rows, cgra.cols) == (2, 8)
        assert len(cgra.lsu_tiles) == 16  # two rows of 8, all LSU


class TestSymmetry:
    def test_column_rotation_is_identified(self):
        base = (1, 2, 3, 4) * 4
        rotated = (2, 3, 4, 1) * 4
        assert canonical_depths(base) == canonical_depths(rotated)

    def test_column_reflection_is_identified(self):
        base = (1, 2, 3, 4) * 4
        mirrored = (4, 3, 2, 1) * 4
        assert canonical_depths(base) == canonical_depths(mirrored)

    def test_row_reflection_swaps_lsu_rows(self):
        # Rows (a, b, c, d) -> (b, a, d, c): the LSU set {row0, row1}
        # is preserved, so the two describe the same machine.
        a, b, c, d = [(depth,) * 4 for depth in (8, 16, 32, 64)]
        assert canonical_depths(a + b + c + d) \
            == canonical_depths(b + a + d + c)

    def test_plain_row_swap_is_not_identified(self):
        # Rows (a, b, c, d) -> (a, c, b, d) is NOT an automorphism:
        # it would tear the torus ring apart.
        a, b, c, d = [(depth,) * 4 for depth in (8, 16, 32, 64)]
        assert canonical_depths(a + b + c + d) \
            != canonical_depths(a + c + b + d)

    def test_dedupe_keeps_first(self):
        designs = [Design("one", (1, 2, 3, 4) * 4),
                   Design("two", (2, 3, 4, 1) * 4),
                   Design("other", (9,) * 16)]
        kept = dedupe_designs(designs)
        assert [design.name for design in kept] == ["one", "other"]


class TestGenerators:
    def test_homogeneous_ladder(self):
        designs = homogeneous_designs((16, 8, 8))
        assert [d.name for d in designs] == ["hom8", "hom16"]
        assert all(len(set(d.cm_depths)) == 1 for d in designs)

    def test_table1_matches_the_paper_totals(self):
        designs = {d.name: d for d in table1_designs()}
        for name, total in EXPECTED_TOTALS.items():
            assert designs[name.lower()].total_words == total

    def test_row_banded_deduped_by_reflection(self):
        designs = row_banded_designs((8, 16))
        # 2^4 = 16 assignments, reflection-fixed: (a,a,b,b) -> 4,
        # so (16 + 4) / 2 = 10 distinct designs.
        assert len(designs) == 10

    def test_column_banded_collapses_hard(self):
        designs = column_banded_designs((8, 16))
        # Necklaces of length 4 over 2 colours under the dihedral
        # group: 6 equivalence classes.
        assert len(designs) == 6

    def test_sampled_tile_designs_deterministic(self):
        first = sampled_tile_designs((8, 16, 32), samples=6, seed=9)
        again = sampled_tile_designs((8, 16, 32), samples=6, seed=9)
        assert [d.cm_depths for d in first] \
            == [d.cm_depths for d in again]
        other = sampled_tile_designs((8, 16, 32), samples=6, seed=10)
        assert [d.cm_depths for d in first] \
            != [d.cm_depths for d in other]

    def test_build_space_dedupes_across_kinds(self):
        designs = build_space(("ladder", "table1"),
                              depths=(32, 64))
        names = [design.name for design in designs]
        # hom32/hom64 appear once (the ladder got there first); the
        # heterogeneous Table I configs survive.
        assert names.count("hom32") + names.count("hom64") == 2
        assert "het1" in names and "het2" in names

    def test_build_space_rejects_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown design space"):
            build_space(("warp",))

    def test_scaled_generators_never_alias_table1_names(self):
        # A 2x2 hom64 is not the paper's 4x4 hom64; results are
        # keyed by name, so mixing shapes must keep names distinct.
        designs = build_space(("ladder", "table1"), depths=(32, 64),
                              rows=2, cols=2)
        names = [design.name for design in designs]
        assert len(names) == len(set(names))
        assert "hom64@2x2" in names and "hom64" in names

    def test_duplicate_names_rejected(self, monkeypatch):
        # The guard is unreachable through the built-in generators
        # (shape tags keep them distinct) — defence in depth for a
        # future generator that forgets.
        from repro.dse import space as space_mod

        def clashing(depths, rows, cols):
            return [Design("same", (8,) * 16),
                    Design("same", (16,) * 16)]

        monkeypatch.setattr(space_mod, "homogeneous_designs",
                            clashing)
        with pytest.raises(ReproError, match="duplicate design"):
            build_space(("ladder",))

    def test_bad_depths_rejected(self):
        with pytest.raises(ReproError, match="positive"):
            homogeneous_designs((0, 8))


class TestStaticBounds:
    def test_demand_is_positive(self):
        ops, memory_ops = kernel_demand("fir")
        assert ops > memory_ops > 0

    def test_capacity_bound(self):
        ops, _ = kernel_demand("fft")
        starved = Design("tiny", (1,) * 16)
        assert starved.total_words < ops
        assert static_unmappable(starved, "fft")

    def test_lsu_bound(self):
        # Plenty of total capacity, but LSU rows of depth 1 cannot
        # hold the memory ops.
        _, memory_ops = kernel_demand("nonsep_filter")
        design = Design("lsu_starved", (1,) * 8 + (64,) * 8)
        assert design.lsu_words < memory_ops
        assert static_unmappable(design, "nonsep_filter")

    def test_generous_design_passes(self):
        assert not static_unmappable(Design("big", (64,) * 16), "fir")

    def test_never_fires_for_table1(self):
        # `static_unmappable -> the real pipeline reports a
        # deterministic no-map` is exercised end-to-end in the slow
        # integration suite; here we pin the cheap direction: the
        # bound never fires for the Table I configs, all of which
        # map the whole suite.
        from repro.kernels import PAPER_KERNEL_ORDER
        for design in table1_designs():
            for kernel in PAPER_KERNEL_ORDER:
                assert not static_unmappable(design, kernel)


class TestLadder:
    def test_ladder_spec_shape(self):
        spec = ladder_spec("fir", 16).resolve()
        assert spec.config_name == "HOM16"
        assert spec.cm_depths == (16,) * 16
        assert spec.options.max_attempts == 10
        assert spec.options.cab  # the full aware flow

    def test_ladder_grid_is_depth_major(self):
        specs = ladder_grid_specs(("fir", "fft"), (8, 16))
        assert [(s.kernel_name, s.config_name) for s in specs] == [
            ("fir", "HOM8"), ("fft", "HOM8"),
            ("fir", "HOM16"), ("fft", "HOM16")]

    def test_default_ladder_unchanged(self):
        # The example's historical ladder — changing it silently
        # would change every published minimum-depth table.
        assert DEPTH_LADDER == (8, 16, 24, 32, 48, 64)
