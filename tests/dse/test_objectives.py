"""Objective aggregation and vector orientation."""

import math

import pytest

from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    design_metrics,
    metrics_vector,
    parse_objectives,
)
from repro.dse.space import Design
from repro.errors import ReproError
from repro.power.area import AreaModel
from repro.power.energy import EnergyBreakdown
from repro.runtime.sweep import ExperimentPoint

DESIGN = Design("x", (32,) * 16)


def point(kernel, cycles, uj):
    return ExperimentPoint(kernel, "X", "full", cycles=cycles,
                           energy=EnergyBreakdown({"alu": uj * 1e6}),
                           mapped=True)


def unmapped(kernel):
    return ExperimentPoint(kernel, "X", "full",
                           error="context overflow")


class TestDesignMetrics:
    def test_means_over_mapped_kernels(self):
        metrics = design_metrics(
            DESIGN,
            {"a": point("a", 100, 1.0), "b": point("b", 300, 3.0),
             "c": unmapped("c")},
            kernels=("a", "b", "c"))
        assert metrics["energy"] == pytest.approx(2.0)
        assert metrics["latency"] == pytest.approx(200.0)
        assert metrics["mappability"] == pytest.approx(2 / 3)

    def test_unevaluated_counts_as_unmapped(self):
        metrics = design_metrics(
            DESIGN, {"a": point("a", 100, 1.0), "b": None},
            kernels=("a", "b"))
        assert metrics["mappability"] == pytest.approx(0.5)

    def test_nothing_mapped_is_infinite(self):
        metrics = design_metrics(DESIGN, {"a": None},
                                 kernels=("a",))
        assert math.isinf(metrics["energy"])
        assert math.isinf(metrics["latency"])
        assert metrics["mappability"] == 0.0

    def test_cm_area_matches_the_area_model(self):
        metrics = design_metrics(DESIGN, {"a": None}, kernels=("a",))
        expected = AreaModel().cgra_breakdown(
            DESIGN.build_cgra())["context_memory"]
        assert metrics["cm_area"] == pytest.approx(expected)

    def test_empty_kernel_set_rejected(self):
        with pytest.raises(ReproError):
            design_metrics(DESIGN, {}, kernels=())


class TestVector:
    def test_maximised_objectives_flip(self):
        metrics = {"energy": 2.0, "latency": 100.0, "cm_area": 0.5,
                   "mappability": 0.75}
        assert metrics_vector(metrics) == (2.0, 100.0, 0.5, 0.25)

    def test_subset_follows_the_parsed_order(self):
        metrics = {"energy": 2.0, "latency": 100.0, "cm_area": 0.5,
                   "mappability": 0.75}
        objectives = parse_objectives(("cm_area", "energy"))
        assert objectives == ("energy", "cm_area")
        assert metrics_vector(metrics, objectives) == (2.0, 0.5)


class TestParse:
    def test_default(self):
        assert parse_objectives(None) == DEFAULT_OBJECTIVES

    def test_order_is_canonicalised(self):
        assert parse_objectives(("latency", "energy")) \
            == ("energy", "latency")

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown objectives"):
            parse_objectives(("energy", "karma"))

    def test_duplicates_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            parse_objectives(("energy", "energy"))

    def test_single_objective_rejected(self):
        with pytest.raises(ReproError, match="at least two"):
            parse_objectives(("energy",))
