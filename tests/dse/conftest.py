"""Shared fixtures for the DSE test suite.

``fake_compute`` swaps the worker entry point for a deterministic
microsecond-scale stand-in (the same seam every runtime suite
patches; the serial ``workers=1`` path looks the attribute up on the
module, so the patch reaches everything the exploration engine
runs).  The fake is *capacity-aware*: a design whose total CM words
sit below a kernel-sized threshold reports ``context overflow``, so
mappability, static-prune interplay and frontier shapes are all
exercised without paying for real mapping.
"""

import pytest

from repro.power.energy import EnergyBreakdown
from repro.runtime.sweep import ExperimentPoint


def fake_point(spec):
    """Deterministic synthetic result for one resolved spec.

    Mappability: the total CM capacity must reach 4x the kernel's
    name length (an arbitrary but stable stand-in for "bigger
    kernels need deeper memories").  Energy grows with capacity
    (leakage), cycles shrink slightly with capacity — so frontiers
    have genuine energy/latency/area tension.
    """
    spec = spec.resolve()
    if spec.cm_depths is not None:
        capacity = sum(spec.cm_depths)
    else:
        capacity = spec.build_cgra().total_cm_words
    need = 32 * len(spec.kernel_name)
    if capacity < need:
        return ExperimentPoint(
            spec.kernel_name, spec.config_name, spec.variant,
            compile_seconds=0.0, error="context overflow")
    signature = sum(ord(ch) for ch in spec.describe()) % 97
    cycles = 200 + 40 * len(spec.kernel_name) - capacity // 64
    return ExperimentPoint(
        spec.kernel_name, spec.config_name, spec.variant,
        compile_seconds=0.0, cycles=max(cycles, 50),
        energy=EnergyBreakdown({"alu": 500.0 + signature,
                                "cm": 2.0 * capacity}),
        mapped=True)


@pytest.fixture
def fake_compute(monkeypatch):
    """Replace the worker entry point with :func:`fake_point`."""
    from repro.runtime import pool

    monkeypatch.setattr(pool, "_compute_captured", fake_point)
    return fake_point
