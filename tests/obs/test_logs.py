"""repro.obs.logs — levels, formats, env parsing."""

import io
import json

from repro.obs import logs


def capture(**configure):
    stream = io.StringIO()
    logs.configure(stream=stream, **configure)
    return stream


class TestLevels:
    def test_default_level_is_info(self):
        stream = capture()
        log = logs.get_logger("repro.test")
        log.debug("hidden")
        log.info("shown")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "shown" in text

    def test_level_filter(self):
        stream = capture(level="error")
        log = logs.get_logger("repro.test")
        log.warning("quiet")
        log.error("loud", code=7)
        text = stream.getvalue()
        assert "quiet" not in text
        assert "loud" in text
        assert "code=7" in text

    def test_enabled_for(self):
        logs.configure(level="warning")
        log = logs.get_logger("repro.test")
        assert log.enabled_for("error")
        assert not log.enabled_for("info")


class TestTextFormat:
    def test_line_shape(self):
        stream = capture()
        logs.get_logger("repro.serve").info(
            "request", path="/metrics", status=200)
        line = stream.getvalue().strip()
        assert " INFO " in line
        assert "repro.serve: request" in line
        assert line.endswith("path=/metrics status=200")
        assert line[:4].isdigit()  # ISO timestamp year


class TestJsonFormat:
    def test_lines_parse_and_carry_fields(self):
        stream = capture(json_mode=True)
        logs.get_logger("repro.jobs").warning(
            "job failed", job_id="job-1", attempts=2)
        record = json.loads(stream.getvalue())
        assert record["level"] == "warning"
        assert record["logger"] == "repro.jobs"
        assert record["event"] == "job failed"
        assert record["job_id"] == "job-1"
        assert record["attempts"] == 2
        assert record["ts"].endswith("Z")


class TestEnvParsing:
    def test_level_only(self):
        assert logs._parse_env("debug") == ("debug", False)

    def test_level_and_json(self):
        assert logs._parse_env("warning:json") == ("warning", True)

    def test_junk_degrades_to_defaults(self):
        assert logs._parse_env("verbose:xml") \
            == (logs.DEFAULT_LEVEL, False)
        assert logs._parse_env("") == (logs.DEFAULT_LEVEL, False)
        assert logs._parse_env(None) == (logs.DEFAULT_LEVEL, False)

    def test_json_alone(self):
        assert logs._parse_env(":json") == (logs.DEFAULT_LEVEL, True)


class TestLoggerCache:
    def test_get_logger_caches_by_name(self):
        assert logs.get_logger("repro.a") is logs.get_logger("repro.a")
        assert logs.get_logger("repro.a") \
            is not logs.get_logger("repro.b")
