"""repro.obs.trace — spans, propagation, ingestion, Chrome export."""

import json
import threading

import pytest

from repro.obs import trace


class TestSpanBasics:
    def test_off_by_default_records_nothing(self):
        with trace.span("anything", key="value"):
            pass
        assert trace.snapshot_spans() == []

    def test_off_path_returns_the_shared_noop(self):
        assert trace.span("a") is trace.span("b")

    def test_enabled_span_records_a_dict(self):
        trace.enable_tracing()
        with trace.span("work", kernel="fir") as active:
            active.set(outcome="ok")
        (span,) = trace.drain_spans()
        assert span["name"] == "work"
        assert span["parent_id"] is None
        assert len(span["trace_id"]) == 32
        assert len(span["span_id"]) == 16
        assert span["status"] == "ok"
        assert span["attrs"] == {"kernel": "fir", "outcome": "ok"}
        assert span["wall_us"] >= 0
        assert span["start_unix_us"] > 0

    def test_nesting_parents_automatically(self):
        trace.enable_tracing()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = trace.drain_spans()
        assert inner["name"] == "inner"
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_exception_marks_the_span_failed(self):
        trace.enable_tracing()
        with pytest.raises(ValueError):
            with trace.span("doomed"):
                raise ValueError("boom")
        (span,) = trace.drain_spans()
        assert span["status"] == "error"
        assert span["error"] == "ValueError"

    def test_sibling_spans_share_parent_not_each_other(self):
        trace.enable_tracing()
        with trace.span("root"):
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        first, second, root = trace.drain_spans()
        assert first["parent_id"] == root["span_id"]
        assert second["parent_id"] == root["span_id"]


class TestTraceparent:
    def test_roundtrip(self):
        context = trace.SpanContext(trace.new_trace_id(),
                                    trace.new_span_id())
        parsed = trace.parse_traceparent(
            trace.format_traceparent(context))
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    @pytest.mark.parametrize("header", [
        None, 42, "", "junk", "00-short-short-01",
        "00-" + "g" * 32 + "-" + "0" * 16 + "-01",
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # bad version
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
        "00-" + "a" * 32 + "-" + "b" * 16,          # missing flags
    ])
    def test_junk_headers_degrade_to_none(self, header):
        assert trace.parse_traceparent(header) is None

    def test_carrier_roundtrip_through_adopt(self):
        trace.enable_tracing()
        with trace.span("remote-parent"):
            carrier = trace.current_carrier()
        (parent,) = trace.drain_spans()
        with trace.adopt(carrier):
            with trace.span("child"):
                pass
        (child,) = trace.drain_spans()
        assert child["trace_id"] == parent["trace_id"]
        assert child["parent_id"] == parent["span_id"]

    def test_no_active_span_means_no_carrier(self):
        assert trace.current_carrier() is None

    def test_adopt_records_without_global_enable(self):
        # A server that is not itself tracing still records a traced
        # client's request: adoption alone activates the span path.
        carrier = {"traceparent": trace.format_traceparent(
            trace.SpanContext("ab" * 16, "cd" * 8))}
        assert not trace.tracing_enabled()
        with trace.adopt(carrier):
            assert trace.tracing_active()
            with trace.span("adopted"):
                pass
        assert not trace.tracing_active()
        (span,) = trace.drain_spans()
        assert span["trace_id"] == "ab" * 16
        assert span["parent_id"] == "cd" * 8

    def test_adopt_none_is_a_noop(self):
        with trace.adopt(None):
            with trace.span("ignored"):
                pass
        assert trace.snapshot_spans() == []


class TestThreadPropagation:
    def test_threads_need_the_carrier(self):
        trace.enable_tracing()
        recorded = []

        def worker(carrier):
            with trace.adopt(carrier):
                with trace.span("thread-work"):
                    pass
            recorded.append(True)

        with trace.span("main"):
            carrier = trace.current_carrier()
            thread = threading.Thread(target=worker, args=(carrier,))
            thread.start()
            thread.join()
        assert recorded
        work, main = trace.drain_spans()
        assert work["trace_id"] == main["trace_id"]
        assert work["parent_id"] == main["span_id"]


class TestIngest:
    def test_ingest_keeps_only_wellformed_dicts(self):
        accepted = trace.ingest([
            {"name": "ok", "trace_id": "t" * 32, "span_id": "s" * 16},
            {"name": 3, "trace_id": "x", "span_id": "y"},
            "not-a-dict",
            None,
        ])
        assert accepted == 1
        (span,) = trace.snapshot_spans()
        assert span["name"] == "ok"

    def test_ingest_observe_stages_feeds_the_histogram(self):
        from repro.obs import metrics

        before = metrics.STAGE_SECONDS.count(stage="map")
        trace.ingest([{
            "name": "map", "trace_id": "a" * 32, "span_id": "b" * 16,
            "wall_us": 2_000_000, "attrs": {"stage": "map"},
        }], observe_stages=True)
        assert metrics.STAGE_SECONDS.count(stage="map") == before + 1
        assert metrics.STAGE_SECONDS.sum(stage="map") \
            == pytest.approx(2.0)

    def test_spans_for_trace_drains_selectively(self):
        trace.ingest([
            {"name": "a", "trace_id": "1" * 32, "span_id": "a" * 16},
            {"name": "b", "trace_id": "2" * 32, "span_id": "b" * 16},
        ])
        mine = trace.spans_for_trace("1" * 32, drain=True)
        assert [span["name"] for span in mine] == ["a"]
        left = trace.snapshot_spans()
        assert [span["name"] for span in left] == ["b"]

    def test_buffer_is_bounded(self, monkeypatch):
        monkeypatch.setattr(trace, "MAX_BUFFERED_SPANS", 3)
        trace.ingest([
            {"name": f"s{i}", "trace_id": "a" * 32,
             "span_id": f"{i:016d}"}
            for i in range(5)])
        assert len(trace.snapshot_spans()) == 3
        assert trace.dropped_spans() == 2


class TestChromeExport:
    def test_export_shape(self, tmp_path):
        trace.enable_tracing()
        with trace.span("outer", kernel="fir"):
            with trace.span("inner"):
                pass
        path = trace.write_chrome_trace(tmp_path / "trace.json",
                                        trace.drain_spans())
        document = json.loads(open(path).read())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 1
            assert "trace_id" in event["args"]
        # Sorted by start timestamp: outer opened first.
        assert events[0]["name"] == "outer"
        assert events[0]["args"]["kernel"] == "fir"


class TestPipelineIntegration:
    def test_compute_point_emits_the_stage_tree(self):
        from repro.runtime.sweep import (
            compute_point, validated_sweep_specs)

        (spec,) = validated_sweep_specs(kernels=("dc_filter",),
                                        configs=("HOM64",),
                                        variants=("basic",))
        trace.enable_tracing()
        point = compute_point(spec)
        assert point.mapped
        spans = trace.drain_spans()
        names = {span["name"] for span in spans}
        assert {"point", "dfg", "map", "assemble", "execute",
                "verify", "price"} <= names
        assert len({span["trace_id"] for span in spans}) == 1
        ids = {span["span_id"] for span in spans}
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids

    def test_worker_spans_stitch_into_the_parent_trace(self):
        # The real cross-process path: two workers, spans shipped
        # back with each result and ingested into one tree.
        from repro.runtime.stream import stream_specs
        from repro.runtime.sweep import validated_sweep_specs

        specs = validated_sweep_specs(
            kernels=("dc_filter", "fir"),
            configs=("HOM64",), variants=("basic",))
        trace.enable_tracing()
        points = [point for _spec, point in
                  stream_specs(specs, workers=2, cache=None)]
        assert all(point.mapped for point in points)
        spans = trace.drain_spans()
        assert len({span["trace_id"] for span in spans}) == 1
        assert len({span["pid"] for span in spans}) >= 2
        ids = {span["span_id"] for span in spans}
        roots = [span for span in spans if span["parent_id"] is None]
        assert [span["name"] for span in roots] == ["sweep"]
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in ids
