"""Isolation for the observability suite.

Tracing state and metric values are process-global by design (one
registry, one span collector); every test here starts from a clean
slate and leaves one behind.
"""

import pytest

from repro.obs import logs, metrics, trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    trace.reset_tracing()
    metrics.REGISTRY.reset_values()
    logs.reset()
    yield
    trace.reset_tracing()
    metrics.REGISTRY.reset_values()
    logs.reset()
