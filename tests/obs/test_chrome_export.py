"""Chrome trace-event export edge cases.

The exporter's output is only as good as what Perfetto (and our own
``spans_from_chrome``) can load back: names that need JSON escaping,
spans too fast for microsecond resolution, and — most importantly —
traces captured by ``--trace-out`` on a run that *failed*, because
the trace of the run that misbehaved is the one worth keeping.
"""

import json

from repro.cli import main
from repro.obs import trace
from repro.obs.analyze import spans_from_chrome
from repro.runtime.sweep import ExperimentPoint


class TestEscaping:
    def test_names_needing_json_escaping_round_trip(self):
        trace.enable_tracing()
        evil = 'kernel "fir"\\path\nline2\ttab'
        with trace.span(evil, note='quote " and \\ slash'):
            pass
        document = trace.chrome_trace(trace.drain_spans())
        # The document must survive a strict JSON round trip ...
        text = json.dumps(document)
        reloaded = json.loads(text)
        events = [e for e in reloaded["traceEvents"]
                  if e.get("ph") == "X"]
        assert events[0]["name"] == evil
        assert events[0]["args"]["note"] == 'quote " and \\ slash'
        # ... and reconstruct to the same span.
        spans = spans_from_chrome(reloaded)
        assert spans[0]["name"] == evil

    def test_written_file_is_strict_json(self, tmp_path):
        trace.enable_tracing()
        with trace.span('a "quoted" name'):
            pass
        path = tmp_path / "t.json"
        trace.write_chrome_trace(path, trace.drain_spans())
        with open(path) as fh:
            document = json.load(fh)
        assert spans_from_chrome(document)[0]["name"] == \
            'a "quoted" name'


class TestZeroDuration:
    def test_zero_wall_span_exports_min_duration(self):
        span = {
            "name": "instant", "trace_id": "t" * 32,
            "span_id": "a" * 16, "parent_id": None,
            "start_unix_us": 10, "wall_us": 0, "cpu_us": 0,
            "pid": 1, "thread": "main", "status": "ok", "attrs": {},
        }
        document = trace.chrome_trace([span])
        events = [e for e in document["traceEvents"]
                  if e.get("ph") == "X"]
        # dur 0 renders as an invisible sliver in Perfetto; the
        # exporter floors it at 1us.
        assert events[0]["dur"] >= 1

    def test_zero_duration_span_still_analyzable(self):
        span = {
            "name": "instant", "trace_id": "t" * 32,
            "span_id": "a" * 16, "parent_id": None,
            "start_unix_us": 10, "wall_us": 0, "cpu_us": 0,
            "pid": 1, "thread": "main", "status": "ok", "attrs": {},
        }
        back = spans_from_chrome(trace.chrome_trace([span]))
        assert back[0]["span_id"] == "a" * 16
        assert back[0]["wall_us"] >= 0


class TestTraceOnFailingExit:
    def failing_point(self, spec):
        spec = spec.resolve()
        return ExperimentPoint(
            spec.kernel_name, spec.config_name, spec.variant,
            compile_seconds=0.0, error="injected crash")

    def test_trace_out_written_when_sweep_crashes(self, tmp_path,
                                                  monkeypatch,
                                                  capsys):
        from repro.runtime import pool
        monkeypatch.setattr(pool, "_compute_captured",
                            self.failing_point)
        out = tmp_path / "crash-trace.json"
        code = main(["sweep", "--kernels", "dc_filter",
                     "--configs", "HOM64", "--variants", "basic",
                     "--no-cache", "--quiet",
                     "--trace-out", str(out)])
        assert code == 1  # the crashed sweep still fails the run
        assert "spans ->" in capsys.readouterr().err
        with open(out) as fh:
            document = json.load(fh)
        spans = spans_from_chrome(document)
        assert any(s["name"] == "sweep" for s in spans)

    def test_trace_out_written_on_usage_error(self, tmp_path,
                                              capsys):
        # A ReproError exit (1) must still leave a valid — possibly
        # empty — trace file behind.
        out = tmp_path / "usage-trace.json"
        code = main(["sweep", "--kernels", "no_such_kernel",
                     "--quiet", "--no-cache",
                     "--trace-out", str(out)])
        assert code == 1
        capsys.readouterr()
        with open(out) as fh:
            document = json.load(fh)
        assert isinstance(document["traceEvents"], list)
