"""repro.obs.metrics — instruments, registry, Prometheus format."""

import threading

import pytest

from repro.errors import ReproError
from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("repro_widgets_total", "Widgets")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_labels_partition_the_series(self, registry):
        counter = registry.counter("repro_hits_total", "Hits",
                                   labels=("source",))
        counter.inc(source="cache")
        counter.inc(2, source="computed")
        assert counter.value(source="cache") == 1
        assert counter.value(source="computed") == 2
        assert counter.total() == 3

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("repro_x_total", "X")
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self, registry):
        counter = registry.counter("repro_y_total", "Y",
                                   labels=("source",))
        with pytest.raises(ReproError):
            counter.inc()
        with pytest.raises(ReproError):
            counter.inc(source="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_depth", "Depth")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value() == 9


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self, registry):
        histogram = registry.histogram("repro_lat_seconds", "Latency",
                                       buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(100.55)
        text = "\n".join(histogram.render())
        assert 'le="0.1"} 1' in text
        assert 'le="1"} 2' in text
        assert 'le="10"} 2' in text
        assert 'le="+Inf"} 3' in text
        assert "repro_lat_seconds_sum" in text
        assert "repro_lat_seconds_count 3" in text


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("repro_same_total", "Same")
        again = registry.counter("repro_same_total", "Same")
        assert first is again

    def test_kind_conflict_is_an_error(self, registry):
        registry.counter("repro_thing", "Thing")
        with pytest.raises(ReproError):
            registry.gauge("repro_thing", "Thing")

    def test_label_conflict_is_an_error(self, registry):
        registry.counter("repro_l_total", "L", labels=("a",))
        with pytest.raises(ReproError):
            registry.counter("repro_l_total", "L", labels=("b",))

    def test_reset_values_keeps_registrations(self, registry):
        counter = registry.counter("repro_r_total", "R")
        counter.inc(5)
        registry.reset_values()
        assert counter.value() == 0
        assert registry.counter("repro_r_total", "R") is counter


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self, registry):
        """The scheduler-load contract: counters never lose updates.

        Eight threads hammer one labelled counter, one gauge and one
        histogram; the totals must be exact, not approximate — a
        torn read-modify-write would show up as a shortfall.
        """
        counter = registry.counter("repro_c_total", "C",
                                   labels=("source",))
        gauge = registry.gauge("repro_g", "G")
        histogram = registry.histogram("repro_h_seconds", "H",
                                       buckets=(0.5,))
        threads_n, per_thread = 8, 1000

        def hammer(index):
            source = "even" if index % 2 == 0 else "odd"
            for _ in range(per_thread):
                counter.inc(source=source)
                gauge.inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = threads_n * per_thread
        assert counter.total() == expected
        assert counter.value(source="even") == expected // 2
        assert gauge.value() == expected
        assert histogram.count() == expected
        assert histogram.sum() == pytest.approx(expected * 0.25)


class TestPrometheusFormat:
    def test_golden_exposition(self, registry):
        """Byte-exact 0.0.4 text format on a small fresh registry."""
        requests = registry.counter(
            "repro_http_requests_total", "HTTP requests",
            labels=("method", "code"))
        depth = registry.gauge("repro_queue_depth", "Queued jobs")
        latency = registry.histogram(
            "repro_stage_seconds", "Stage latency",
            buckets=(0.1, 1.0))
        requests.inc(method="GET", code=200)
        requests.inc(2, method="POST", code=429)
        depth.set(3)
        latency.observe(0.05)
        latency.observe(0.5)
        assert registry.render() == (
            "# HELP repro_http_requests_total HTTP requests\n"
            "# TYPE repro_http_requests_total counter\n"
            'repro_http_requests_total{method="GET",code="200"} 1\n'
            'repro_http_requests_total{method="POST",code="429"} 2\n'
            "# HELP repro_queue_depth Queued jobs\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 3\n"
            "# HELP repro_stage_seconds Stage latency\n"
            "# TYPE repro_stage_seconds histogram\n"
            'repro_stage_seconds_bucket{le="0.1"} 1\n'
            'repro_stage_seconds_bucket{le="1"} 2\n'
            'repro_stage_seconds_bucket{le="+Inf"} 2\n'
            "repro_stage_seconds_sum 0.55\n"
            "repro_stage_seconds_count 2\n")

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("repro_esc_total", "Esc",
                                   labels=("path",))
        counter.inc(path='a"b\\c\nd')
        assert '{path="a\\"b\\\\c\\nd"}' \
            in "\n".join(counter.render())

    def test_shared_registry_renders_every_instrument(self):
        text = metrics.REGISTRY.render()
        for name in ("repro_cache_hits_total", "repro_points_total",
                     "repro_stage_seconds", "repro_http_requests_total",
                     "repro_jobs_total", "repro_scheduler_queue_depth"):
            assert f"# TYPE {name} " in text


class TestPipelineCounters:
    def test_cache_and_point_counters_move(self, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.runtime.stream import stream_specs
        from repro.runtime.sweep import validated_sweep_specs

        specs = validated_sweep_specs(kernels=("dc_filter",),
                                      configs=("HOM64",),
                                      variants=("basic",))
        cache = ResultCache(tmp_path)
        list(stream_specs(specs, workers=1, cache=cache))
        assert metrics.POINTS.value(source="computed") == 1
        assert metrics.CACHE_MISSES.total() == 1
        assert metrics.CACHE_STORES.total() == 1
        list(stream_specs(specs, workers=1, cache=cache))
        assert metrics.POINTS.value(source="cache") == 1
        assert metrics.CACHE_HITS.total() == 1
        assert metrics.STAGE_SECONDS.count(stage="map") == 1
        assert metrics.SIM_CYCLES.value(engine="analytic") > 0
