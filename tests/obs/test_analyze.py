"""Trace analytics: critical path, self time, occupancy, stragglers."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import trace
from repro.obs.analyze import (
    analyze_spans,
    load_trace_file,
    render_analysis,
    spans_from_chrome,
)

TRACE = "0" * 31 + "1"


def make_span(name, span_id, parent_id, start_us, wall_us,
              pid=1, thread="main", status="ok", **attrs):
    return {
        "name": name, "trace_id": TRACE,
        "span_id": span_id, "parent_id": parent_id,
        "start_unix_us": start_us, "wall_us": wall_us,
        "cpu_us": wall_us, "pid": pid, "thread": thread,
        "status": status, "attrs": attrs,
    }


def sequential_tree():
    """root(0..100) -> a(0..40) -> a1(10..30), then b(40..90)."""
    return [
        make_span("root", "r" * 16, None, 0, 100),
        make_span("a", "a" * 16, "r" * 16, 0, 40),
        make_span("a1", "1" * 16, "a" * 16, 10, 20),
        make_span("b", "b" * 16, "r" * 16, 40, 50),
    ]


class TestCriticalPath:
    def test_ids_exist_and_duration_bounded(self):
        spans = sequential_tree()
        payload = analyze_spans(spans)
        ids = {span["span_id"] for span in spans}
        assert all(row["span_id"] in ids
                   for row in payload["critical_path"])
        assert payload["critical_path_us"] <= \
            payload["root"]["wall_us"]

    def test_sequential_stages_all_credited(self):
        payload = analyze_spans(sequential_tree())
        names = [row["name"] for row in payload["critical_path"]]
        # Both sequential children are on the path, not just the
        # latest-ending one.
        assert "a" in names and "b" in names and "a1" in names
        by_name = {row["name"]: row
                   for row in payload["critical_path"]}
        # a's on-path time excludes a1's nested 20us: 40 - 20 = 20,
        # root's own time is the 10us tail after b.
        assert by_name["a"]["self_us"] == 20
        assert by_name["a1"]["self_us"] == 20
        assert by_name["b"]["self_us"] == 50
        assert by_name["root"]["self_us"] == 10
        assert payload["critical_path_us"] == 100

    def test_overlapping_children_never_exceed_root(self):
        # Two children covering the same window (parallel workers).
        spans = [
            make_span("root", "r" * 16, None, 0, 100),
            make_span("w0", "a" * 16, "r" * 16, 0, 100),
            make_span("w1", "b" * 16, "r" * 16, 0, 100),
        ]
        payload = analyze_spans(spans)
        assert payload["critical_path_us"] <= 100

    def test_child_clock_skew_clipped_to_parent(self):
        # A worker span (separate process clock) leaking past the
        # root's window must not mint critical-path time.
        spans = [
            make_span("root", "r" * 16, None, 0, 100),
            make_span("late", "a" * 16, "r" * 16, 50, 500),
        ]
        payload = analyze_spans(spans)
        assert payload["critical_path_us"] <= 100


class TestStagesAndWorkers:
    def test_self_time_exclusive_of_children(self):
        payload = analyze_spans(sequential_tree())
        stages = {row["name"]: row for row in payload["stages"]}
        assert stages["root"]["total_self_us"] == 10  # 100-40-50
        assert stages["a"]["total_self_us"] == 20     # 40-20
        assert stages["b"]["total_self_us"] == 50

    def test_stage_rows_sorted_by_self_time(self):
        payload = analyze_spans(sequential_tree())
        selfs = [row["total_self_us"] for row in payload["stages"]]
        assert selfs == sorted(selfs, reverse=True)

    def test_worker_occupancy_union_not_double_counted(self):
        # One lane, nested spans: busy time is the union (100), not
        # the sum (190).
        payload = analyze_spans(sequential_tree())
        assert len(payload["workers"]) == 1
        lane = payload["workers"][0]
        assert lane["busy_us"] == 100
        assert lane["utilization"] == 1.0

    def test_idle_lane_shows_low_utilization(self):
        spans = sequential_tree() + [
            make_span("blip", "c" * 16, "r" * 16, 0, 10,
                      pid=2, thread="w0"),
        ]
        payload = analyze_spans(spans)
        lanes = {(row["pid"], row["thread"]): row
                 for row in payload["workers"]}
        assert lanes[(2, "w0")]["utilization"] == pytest.approx(0.1)


class TestStragglers:
    def shard_spans(self, walls):
        spans = [make_span("run_distributed", "d" * 16, None,
                           0, max(walls) + 10)]
        for i, wall in enumerate(walls):
            spans.append(make_span(
                "shard", f"{i:016x}", "d" * 16, 0, wall,
                shard=i, server=f"http://s{i}"))
        return spans

    def test_straggler_flagged_beyond_factor(self):
        payload = analyze_spans(self.shard_spans([100, 100, 300]))
        shards = payload["shards"]
        assert shards["count"] == 3
        assert shards["median_us"] == 100
        assert len(shards["stragglers"]) == 1
        straggler = shards["stragglers"][0]
        assert straggler["shard"] == 2
        assert straggler["server"] == "http://s2"
        assert straggler["ratio"] == 3.0

    def test_balanced_shards_have_no_stragglers(self):
        payload = analyze_spans(self.shard_spans([100, 110, 105]))
        assert payload["shards"]["stragglers"] == []

    def test_single_shard_never_a_straggler(self):
        payload = analyze_spans(self.shard_spans([100]))
        assert payload["shards"]["count"] == 1
        assert payload["shards"]["stragglers"] == []


class TestRobustness:
    def test_empty_spans_raise(self):
        with pytest.raises(ReproError, match="no spans"):
            analyze_spans([])

    def test_orphan_parents_counted_not_fatal(self):
        spans = [
            make_span("root", "r" * 16, None, 0, 100),
            make_span("lost", "a" * 16, "f" * 16, 0, 10),
        ]
        payload = analyze_spans(spans)
        assert payload["orphans"] == 1
        assert payload["roots"] == 2
        assert payload["root"]["name"] == "root"

    def test_error_spans_counted(self):
        spans = sequential_tree()
        spans[2]["status"] = "error"
        payload = analyze_spans(spans)
        assert payload["errors"] == 1

    def test_payload_is_json_safe(self):
        payload = analyze_spans(sequential_tree())
        assert json.loads(json.dumps(payload)) == payload

    def test_render_mentions_critical_path(self):
        text = render_analysis(analyze_spans(sequential_tree()))
        assert "critical path" in text
        assert "worker occupancy" in text


class TestChromeRoundTrip:
    def test_live_spans_survive_chrome_export(self):
        trace.enable_tracing()
        with trace.span("outer", kernel="fir"):
            with trace.span("inner"):
                pass
        spans = trace.drain_spans()
        document = trace.chrome_trace(spans)
        back = spans_from_chrome(document)
        assert {s["span_id"] for s in back} == \
            {s["span_id"] for s in spans}
        by_id = {s["span_id"]: s for s in back}
        outer = next(s for s in back if s["name"] == "outer")
        inner = next(s for s in back if s["name"] == "inner")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["attrs"]["kernel"] == "fir"
        assert by_id[outer["span_id"]]["trace_id"] == \
            outer["trace_id"]

    def test_analysis_equivalent_before_and_after(self, tmp_path):
        trace.enable_tracing()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        spans = trace.drain_spans()
        live = analyze_spans(spans)
        path = tmp_path / "t.json"
        trace.write_chrome_trace(path, spans)
        reloaded = analyze_spans(load_trace_file(path))
        assert reloaded["root"]["span_id"] == live["root"]["span_id"]
        assert [r["span_id"] for r in reloaded["critical_path"]] == \
            [r["span_id"] for r in live["critical_path"]]

    def test_junk_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ReproError, match="not JSON"):
            load_trace_file(bad)

    def test_foreign_chrome_trace_rejected(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0, "dur": 5}]}))
        with pytest.raises(ReproError, match="no repro spans"):
            load_trace_file(foreign)


class TestCliAnalyze:
    def test_trace_analyze_from_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--kernels", "dc_filter",
                     "--configs", "HOM64", "--variants", "basic",
                     "--out", str(out), "--quiet"]) == 0
        capsys.readouterr()
        assert main(["trace", "--analyze", "--from", str(out)]) == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "sweep" in text

    def test_trace_analyze_json_payload(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--kernels", "dc_filter",
                     "--configs", "HOM64", "--variants", "basic",
                     "--out", str(out), "--analyze", "--json",
                     "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "trace-analysis"
        assert payload["critical_path_us"] <= \
            payload["root"]["wall_us"]
        ids = {row["span_id"] for row in payload["critical_path"]}
        assert ids  # non-empty path

    def test_missing_file_is_one_line_error(self, tmp_path, capsys):
        assert main(["trace", "--analyze", "--from",
                     str(tmp_path / "nope.json")]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
