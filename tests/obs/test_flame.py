"""Sampling profiler: collection, scoping, collapsed-stack output."""

import time
from collections import Counter

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import flame, trace
from repro.obs.flame import (
    DEFAULT_HZ,
    ENV_PROFILE_HZ,
    SamplingProfiler,
    collapsed_lines,
    profiled_span,
    render_flame,
    resolve_hz,
    write_collapsed,
)


def busy_wait(seconds):
    """A distinctive frame the sampler can catch."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestResolveHz:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_HZ, "50")
        assert resolve_hz(200) == 200.0

    def test_env_used_when_no_arg(self, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_HZ, "123.5")
        assert resolve_hz() == 123.5

    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(ENV_PROFILE_HZ, raising=False)
        assert resolve_hz() == 0.0

    def test_junk_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_HZ, "fast")
        with pytest.raises(ReproError, match="sampling rate"):
            resolve_hz()


class TestSamplingProfiler:
    def test_catches_busy_function(self):
        profiler = SamplingProfiler(hz=400)
        profiler.start()
        busy_wait(0.15)
        counts = profiler.stop()
        assert sum(counts.values()) > 0
        assert any("busy_wait" in stack for stack in counts)

    def test_zero_hz_rejected(self):
        with pytest.raises(ReproError, match="sampling rate"):
            SamplingProfiler(hz=0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        try:
            with pytest.raises(ReproError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_idempotent(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        first = profiler.stop()
        assert profiler.stop() is first

    def test_thread_pinning_excludes_other_threads(self):
        import threading
        stop = threading.Event()

        def noisy_wait():
            stop.wait(2.0)

        noisy = threading.Thread(target=noisy_wait, daemon=True)
        noisy.start()
        profiler = SamplingProfiler(
            hz=400, thread_ids={threading.get_ident()})
        profiler.start()
        busy_wait(0.1)
        counts = profiler.stop()
        stop.set()
        # The unpinned thread's distinctive frame never appears.
        assert counts
        assert not any("noisy_wait" in stack for stack in counts)

    def test_stack_order_outermost_first(self):
        profiler = SamplingProfiler(hz=400)
        profiler.start()
        busy_wait(0.1)
        counts = profiler.stop()
        stack = next(s for s in counts if "busy_wait" in s)
        frames = stack.split(";")
        # busy_wait is innermost — at the tail, not the head.
        assert "busy_wait" in frames[-1]


class TestProfiledSpan:
    def test_off_by_default_records_plain_span(self, monkeypatch):
        monkeypatch.delenv(ENV_PROFILE_HZ, raising=False)
        flame.drain_accumulated()
        trace.enable_tracing()
        with profiled_span("quiet") as profiler:
            assert profiler is None
        spans = trace.drain_spans()
        assert [s["name"] for s in spans] == ["quiet"]
        assert sum(flame.drain_accumulated().values()) == 0

    def test_accumulates_when_enabled(self, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_HZ, "400")
        flame.drain_accumulated()
        trace.enable_tracing()
        with profiled_span("hot") as profiler:
            assert profiler is not None
            busy_wait(0.1)
        counts = flame.drain_accumulated()
        assert sum(counts.values()) > 0
        spans = trace.drain_spans()
        assert spans[0]["attrs"]["profile_hz"] == 400.0

    def test_snapshot_preserves_accumulator(self):
        flame.drain_accumulated()
        flame.accumulate(Counter({"a;b": 3}))
        assert flame.snapshot_accumulated() == Counter({"a;b": 3})
        assert flame.drain_accumulated() == Counter({"a;b": 3})
        assert sum(flame.snapshot_accumulated().values()) == 0


class TestCollapsedOutput:
    def test_lines_sorted_and_formatted(self):
        counts = Counter({"m.f;m.g": 2, "m.a": 5})
        assert collapsed_lines(counts) == ["m.a 5", "m.f;m.g 2"]

    def test_write_collapsed_round_trips(self, tmp_path):
        counts = Counter({"mod.outer;mod.inner": 7})
        path = tmp_path / "out.flame"
        write_collapsed(path, counts)
        assert path.read_text() == "mod.outer;mod.inner 7\n"

    def test_render_flame_ranks_leaves(self):
        counts = Counter({"a;b;hot": 80, "a;b;cold": 20})
        text = render_flame(counts)
        assert "100 sample(s)" in text
        assert text.index("hot") < text.index("cold")

    def test_render_empty_suggests_fix(self):
        assert "raise --hz" in render_flame(Counter())


class TestCliFlame:
    def test_profile_flame_renders_table(self, capsys):
        assert main(["profile", "--kernel", "dc_filter",
                     "--config", "HOM64", "--variant", "basic",
                     "--flame", "--hz", "600", "--repeat", "4"]) == 0
        out = capsys.readouterr().out
        assert "flame: dc_filter@HOM64/basic" in out
        assert "sample" in out

    def test_profile_flame_out_writes_collapsed(self, tmp_path,
                                                capsys):
        target = tmp_path / "case.flame"
        assert main(["profile", "--kernel", "dc_filter",
                     "--config", "HOM64", "--variant", "basic",
                     "--flame", "--hz", "600", "--repeat", "4",
                     "--flame-out", str(target)]) == 0
        capsys.readouterr()
        lines = target.read_text().splitlines()
        # Collapsed format: "frame;frame;... count".
        assert all(line.rsplit(" ", 1)[1].isdigit()
                   for line in lines if line)

    def test_hz_without_flame_rejected(self, capsys):
        assert main(["profile", "--kernel", "dc_filter",
                     "--hz", "100"]) == 1
        assert "--hz only applies" in capsys.readouterr().err

    def test_sweep_flame_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(ENV_PROFILE_HZ, "300")
        target = tmp_path / "sweep.flame"
        assert main(["sweep", "--kernels", "dc_filter",
                     "--configs", "HOM64", "--variants", "basic",
                     "--cache-dir", str(tmp_path), "--quiet",
                     "--flame-out", str(target)]) == 0
        err = capsys.readouterr().err
        assert target.exists()
        assert "stack sample(s)" in err
