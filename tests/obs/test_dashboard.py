"""Dashboard renderer: valid standalone HTML, byte-stable output."""

from repro.cli import main
from repro.obs.analyze import analyze_spans
from repro.obs.report import render_report, svg_sparkline
from repro.perf.ledger import append_entry, ledger_path, make_entry


def fixed_entries():
    return [
        make_entry("bench", {
            "total_seconds": 1.0 + i * 0.1,
            "cases": {"fir@HOM32/full": 1.0 + i * 0.1},
            "warmup": 1, "repeat": 3, "reducer": "min",
        }, created_unix=1700000000 + i) for i in range(4)
    ] + [
        make_entry("sweep", {
            "points": 8, "computed": 8, "cache_hits": 0,
            "crashed": 0, "elapsed_seconds": 2.5,
        }, created_unix=1700000100),
        make_entry("diff", {
            "points": 8, "mismatches": 0, "ok": True,
            "backends": ["analytic", "cycle"],
            "elapsed_seconds": 3.0,
        }, created_unix=1700000200),
    ]


def fixed_analysis():
    spans = [
        {"name": "sweep", "trace_id": "t" * 32, "span_id": "r" * 16,
         "parent_id": None, "start_unix_us": 0, "wall_us": 1000,
         "cpu_us": 900, "pid": 1, "thread": "main", "status": "ok",
         "attrs": {}},
        {"name": "map <fir>", "trace_id": "t" * 32,
         "span_id": "a" * 16, "parent_id": "r" * 16,
         "start_unix_us": 100, "wall_us": 800, "cpu_us": 800,
         "pid": 1, "thread": "main", "status": "ok",
         "attrs": {"kernel": "<fir>&co"}},
    ]
    return analyze_spans(spans)


class TestSvgSparkline:
    def test_polyline_with_rounded_coords(self):
        svg = svg_sparkline([1.0, 2.0, 3.0])
        assert svg.startswith('<svg class="sparkline"')
        assert "<polyline" in svg and svg.endswith("</svg>")
        # Coordinates carry at most 2 decimals.
        for token in svg.split('points="')[1].split('"')[0].split():
            for coord in token.split(","):
                whole, _, frac = coord.partition(".")
                assert len(frac) <= 2

    def test_single_value_degrades_to_dot(self):
        svg = svg_sparkline([5.0])
        assert "<circle" in svg and "<polyline" not in svg

    def test_empty_is_empty(self):
        assert svg_sparkline([]) == ""

    def test_flat_series_renders(self):
        assert "<polyline" in svg_sparkline([2.0, 2.0, 2.0])

    def test_deterministic(self):
        assert svg_sparkline([1, 2, 3]) == svg_sparkline([1, 2, 3])


class TestRenderReport:
    def test_standalone_html_with_required_parts(self):
        html_text = render_report(ledger_entries=fixed_entries(),
                                  analysis=fixed_analysis(),
                                  metrics_text="# HELP x y\nx 1\n",
                                  cache_stats={"entries": 3,
                                               "total_bytes": 42})
        assert html_text.startswith("<!DOCTYPE html>")
        assert html_text.rstrip().endswith("</html>")
        assert '<svg class="sparkline"' in html_text
        assert '<table class="critical-path">' in html_text
        assert "prefers-color-scheme" in html_text
        # No external resources: self-contained by construction.
        assert "http://" not in html_text
        assert "<script" not in html_text

    def test_span_names_and_attrs_escaped(self):
        html_text = render_report(analysis=fixed_analysis())
        assert "map &lt;fir&gt;" in html_text
        assert "map <fir>" not in html_text

    def test_metrics_text_escaped(self):
        html_text = render_report(
            metrics_text='x{label="<b>"} 1\n')
        assert "&lt;b&gt;" in html_text

    def test_byte_stable_for_fixed_inputs(self):
        entries = fixed_entries()
        first = render_report(ledger_entries=entries,
                              analysis=fixed_analysis())
        second = render_report(ledger_entries=entries,
                               analysis=fixed_analysis())
        assert first == second

    def test_renders_with_no_inputs(self):
        html_text = render_report()
        assert "<!DOCTYPE html>" in html_text
        assert "empty" in html_text


class TestCliReport:
    def seed_ledger(self):
        path = ledger_path()
        for entry in fixed_entries():
            append_entry(entry, path)

    def test_report_writes_html(self, tmp_path, capsys):
        self.seed_ledger()
        out = tmp_path / "dash.html"
        assert main(["report", "--out", str(out), "--no-cache"]) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert '<svg class="sparkline"' in text
        assert "report ->" in capsys.readouterr().err

    def test_report_byte_stable_across_invocations(self, tmp_path,
                                                   capsys):
        # The acceptance bar: same ledger -> same bytes, because the
        # renderer takes no timestamps of its own.
        self.seed_ledger()
        first, second = tmp_path / "a.html", tmp_path / "b.html"
        assert main(["report", "--out", str(first),
                     "--no-cache"]) == 0
        assert main(["report", "--out", str(second),
                     "--no-cache"]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_report_to_stdout(self, capsys):
        self.seed_ledger()
        assert main(["report", "--out", "-", "--no-cache"]) == 0
        assert "<!DOCTYPE html>" in capsys.readouterr().out

    def test_report_folds_in_trace(self, tmp_path, capsys):
        self.seed_ledger()
        trace_file = tmp_path / "trace.json"
        assert main(["trace", "--kernels", "dc_filter",
                     "--configs", "HOM64", "--variants", "basic",
                     "--out", str(trace_file), "--quiet"]) == 0
        out = tmp_path / "dash.html"
        assert main(["report", "--out", str(out), "--trace",
                     str(trace_file), "--no-cache"]) == 0
        capsys.readouterr()
        assert '<table class="critical-path">' in out.read_text()

    def test_report_includes_cache_stats(self, tmp_path, capsys):
        assert main(["sweep", "--kernels", "dc_filter", "--configs",
                     "HOM64", "--variants", "basic", "--quiet",
                     "--cache-dir", str(tmp_path)]) == 0
        out = tmp_path / "dash.html"
        assert main(["report", "--out", str(out), "--cache-dir",
                     str(tmp_path)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "<h2>Cache</h2>" in text
        assert "total_bytes" in text

    def test_bad_trace_is_one_line_error(self, tmp_path, capsys):
        assert main(["report", "--out", "-", "--trace",
                     str(tmp_path / "nope.json"),
                     "--no-cache"]) == 1
        assert "error:" in capsys.readouterr().err
