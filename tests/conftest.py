"""Suite-wide isolation from the user's environment.

The runtime honours ``REPRO_CACHE_DIR`` and ``REPRO_CACHE_MAX_BYTES``
from the environment; a developer who has either exported (as the
README suggests for real use) must not see spurious failures, and no
test may ever read or write the real ``~/.cache/repro`` — so the
cache directory is *redirected* to a per-test temporary directory
(deleting the variable would send default-dir code paths, e.g. CLI
commands run without ``--cache-dir``, straight to the real cache).
Tests that exercise the env-var behaviour itself override via their
own monkeypatch.
"""

import pytest

from repro.runtime.cache import ENV_CACHE_DIR, ENV_CACHE_MAX_BYTES


@pytest.fixture(autouse=True)
def _isolate_cache_environment(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "repro-cache"))
    monkeypatch.delenv(ENV_CACHE_MAX_BYTES, raising=False)
