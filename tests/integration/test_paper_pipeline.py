"""Integration: the paper's pipeline on downsized kernel instances.

Each of the seven kernels is built small (same structure, smaller trip
counts), mapped with the full context-aware flow onto HET1, assembled,
binary-encoded, executed on the CGRA simulator, and compared
bit-exactly against both the numpy/Python reference and the CPU
model.  One paper-scale smoke test guards the defaults.
"""

import numpy as np
import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.codegen.binary import encode_program
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel

SMALL = {
    "fir": {"n_samples": 6, "n_taps": 4},
    "matmul": {"size": 4, "j_unroll": 2},
    "convolution": {"image": 6},
    "sep_filter": {"image": 9, "taps": 3},
    "nonsep_filter": {"image": 8, "ksize": 3},
    "fft": {"n_points": 8},
    "dc_filter": {"n_samples": 8},
}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_full_pipeline_small(name):
    kernel = get_kernel(name, **SMALL[name])
    mapping = map_kernel(kernel.cdfg, get_config("HET1"),
                         FlowOptions.aware())
    assert mapping.fits
    program = assemble(mapping, kernel.cdfg)
    encode_program(program)  # binary encoding must succeed too

    inputs = kernel.make_inputs(np.random.default_rng(11))
    memory = kernel.make_memory(inputs)
    expected = kernel.reference(inputs)

    cgra_run = CGRASimulator(program, memory).run()
    cpu_run = CPUModel(kernel.cdfg).run(memory)
    for region in kernel.output_regions:
        assert cgra_run.region(kernel.cdfg, region) == expected[region]
        assert cpu_run.region(kernel.cdfg, region) == expected[region]


@pytest.mark.slow
def test_paper_scale_fir_on_every_config():
    kernel = get_kernel("fir")
    inputs = kernel.make_inputs(np.random.default_rng(5))
    memory = kernel.make_memory(inputs)
    expected = kernel.reference(inputs)["y"]
    for config in ("HOM64", "HOM32", "HET1", "HET2"):
        mapping = map_kernel(kernel.cdfg, get_config(config),
                             FlowOptions.aware())
        program = assemble(mapping, kernel.cdfg)
        run = CGRASimulator(program, memory).run()
        assert run.region(kernel.cdfg, "y") == expected, config


@pytest.mark.slow
def test_basic_flow_paper_scale_fft():
    kernel = get_kernel("fft")
    mapping = map_kernel(kernel.cdfg, get_config("HOM64"),
                         FlowOptions.basic())
    program = assemble(mapping, kernel.cdfg, enforce_fit=True)
    inputs = kernel.make_inputs(np.random.default_rng(2))
    run = CGRASimulator(program, kernel.make_memory(inputs)).run()
    expected = kernel.reference(inputs)
    assert run.region(kernel.cdfg, "xr") == expected["xr"]
    assert run.region(kernel.cdfg, "xi") == expected["xi"]
