"""Unit tests for instruction and source descriptors."""

import pytest

from repro.errors import CodegenError
from repro.codegen.isa import Instruction, Source
from repro.ir.opcodes import Opcode


class TestSource:
    def test_rf(self):
        s = Source.rf(5)
        assert s.kind == "rf"
        assert s.uid == 5

    def test_crf(self):
        s = Source.crf(42)
        assert s.kind == "crf"
        assert s.value == 42

    def test_port(self):
        s = Source.port(3, 7)
        assert s.kind == "port"
        assert s.tile == 3
        assert s.uid == 7

    def test_equality(self):
        assert Source.rf(5) == Source.rf(5)
        assert Source.rf(5) != Source.rf(6)
        assert Source.rf(5) != Source.crf(5)

    def test_bad_kind_rejected(self):
        with pytest.raises(CodegenError):
            Source("magic")


class TestInstruction:
    def test_op(self):
        instr = Instruction.op(Opcode.ADD, [Source.rf(1), Source.rf(2)],
                               dest_uid=3, cycle=4)
        assert instr.kind == "op"
        assert instr.issue_cycles == 1
        assert instr.cycle == 4

    def test_mov(self):
        instr = Instruction.mov(Source.crf(7), dest_uid=9, cycle=0)
        assert instr.kind == "mov"
        assert instr.opcode is Opcode.MOV

    def test_pnop(self):
        instr = Instruction.pnop(5, cycle=2)
        assert instr.kind == "pnop"
        assert instr.issue_cycles == 5

    def test_zero_pnop_rejected(self):
        with pytest.raises(CodegenError):
            Instruction.pnop(0, cycle=0)

    def test_bad_opcode_rejected(self):
        with pytest.raises(CodegenError):
            Instruction.op("add", [], None, 0)
