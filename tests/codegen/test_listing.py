"""Listing/pretty-printer tests."""

import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import format_block, format_program, usage_chart
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel


@pytest.fixture(scope="module")
def program():
    kernel = get_kernel("dc_filter", n_samples=16)
    mapping = map_kernel(kernel.cdfg, get_config("HET1"),
                         FlowOptions.aware())
    return assemble(mapping, kernel.cdfg)


class TestListing:
    def test_program_listing_mentions_blocks(self, program):
        text = format_program(program)
        for name in program.blocks:
            assert name in text

    def test_block_listing_shows_instructions(self, program):
        block = next(iter(program.blocks.values()))
        text = format_block(block, program.cgra,
                            only_busy_tiles=False)
        assert "T1" in text

    def test_usage_chart_shows_capacity(self, program):
        text = usage_chart(program)
        assert "/64" in text
        assert "/16" in text  # HET1 has CM16 tiles
        lines = text.splitlines()
        assert len(lines) == 1 + program.cgra.n_tiles
