"""Operand-resolution checks: the assembler as a mapping verifier."""

import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import _resolve, assemble
from repro.codegen.isa import Source
from repro.errors import CodegenError
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.mapping.state import CommittedState, PartialMapping


@pytest.fixture
def pm():
    cgra = get_config("HOM64")
    return PartialMapping(cgra, CommittedState(cgra), 8)


class TestResolve:
    def test_rf_preferred(self, pm):
        pm.record_production(5, tile=0, cycle=1)
        source = _resolve(pm, {}, 5, tile=0, cycle=3)
        assert source == Source.rf(5)

    def test_port_when_rf_absent(self, pm):
        pm.record_production(5, tile=0, cycle=1)
        neighbor = pm.cgra.neighbors(0)[0]
        source = _resolve(pm, {}, 5, tile=neighbor, cycle=2)
        assert source == Source.port(0, 5)

    def test_const_resolves_to_crf(self, pm):
        class FakeConst:
            is_const = True
            value = 42

        source = _resolve(pm, {9: FakeConst()}, 9, tile=3, cycle=0)
        assert source == Source.crf(42)

    def test_unreadable_value_raises(self, pm):
        with pytest.raises(CodegenError):
            _resolve(pm, {}, 77, tile=0, cycle=0)

    def test_too_early_rf_read_raises(self, pm):
        pm.record_production(5, tile=0, cycle=4)
        with pytest.raises(CodegenError):
            _resolve(pm, {}, 5, tile=0, cycle=2)


class TestSourceStatistics:
    def test_every_operand_resolved_in_real_kernel(self):
        kernel = get_kernel("convolution", image=6)
        mapping = map_kernel(kernel.cdfg, get_config("HET1"),
                             FlowOptions.aware())
        program = assemble(mapping, kernel.cdfg)
        kinds = {"rf": 0, "crf": 0, "port": 0}
        for block in program.blocks.values():
            for stream in block.tile_streams.values():
                for instr in stream:
                    for source in instr.sources:
                        kinds[source.kind] += 1
        # A realistic mapping uses all three datapath source kinds.
        assert kinds["rf"] > 0
        assert kinds["crf"] > 0
        assert kinds["port"] > 0
