"""Binary encoding tests: field packing, allocation, round-trip."""

import pytest

from repro.arch.configs import get_config
from repro.codegen.binary import (
    RegisterAllocator,
    decode_word,
    encode_instruction,
    encode_program,
)
from repro.codegen.isa import Instruction, Source
from repro.errors import EncodingError
from repro.ir.opcodes import Opcode
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.codegen.assembler import assemble


@pytest.fixture
def cgra():
    return get_config("HOM64")


@pytest.fixture
def allocator():
    return RegisterAllocator(rrf_words=32, crf_values=[0, 1, 7, 42])


class TestEncodeDecode:
    def test_pnop_roundtrip(self, allocator, cgra):
        word = encode_instruction(Instruction.pnop(9, 0), allocator,
                                  cgra, 0)
        decoded = decode_word(word)
        assert decoded == {"kind": "pnop", "count": 9}

    def test_alu_op_roundtrip(self, allocator, cgra):
        instr = Instruction.op(Opcode.ADD,
                               [Source.rf(10), Source.crf(42)],
                               dest_uid=11, cycle=0)
        decoded = decode_word(encode_instruction(instr, allocator,
                                                 cgra, 0))
        assert decoded["kind"] == "op"
        assert decoded["opcode"] is Opcode.ADD
        assert decoded["sources"][0]["stype"] == "rf"
        assert decoded["sources"][1]["stype"] == "crf"
        assert decoded["dst"] is not None

    def test_mov_port_roundtrip(self, allocator, cgra):
        neighbor = cgra.neighbors(0)[2]
        instr = Instruction.mov(Source.port(neighbor, 5), dest_uid=6,
                                cycle=1)
        decoded = decode_word(encode_instruction(instr, allocator,
                                                 cgra, 0))
        assert decoded["kind"] == "mov"
        assert decoded["sources"][0]["stype"] == "port"
        assert decoded["sources"][0]["index"] == 2

    def test_store_has_no_dst(self, allocator, cgra):
        instr = Instruction.op(Opcode.STORE,
                               [Source.rf(1), Source.rf(2)],
                               dest_uid=None, cycle=0)
        decoded = decode_word(encode_instruction(instr, allocator,
                                                 cgra, 0))
        assert decoded["dst"] is None

    def test_unknown_constant_rejected(self, allocator, cgra):
        instr = Instruction.op(Opcode.ADD,
                               [Source.crf(999), Source.rf(1)],
                               dest_uid=2, cycle=0)
        with pytest.raises(EncodingError):
            encode_instruction(instr, allocator, cgra, 0)

    def test_non_neighbor_port_rejected(self, allocator, cgra):
        instr = Instruction.mov(Source.port(10, 5), dest_uid=6, cycle=0)
        with pytest.raises(EncodingError):
            encode_instruction(instr, allocator, cgra, 0)


class TestAllocator:
    def test_slots_stable(self, allocator):
        first = allocator.slot_for(100)
        assert allocator.slot_for(100) == first
        assert allocator.slot_for(101) == first + 1

    def test_block_reset(self, allocator):
        allocator.slot_for(100)
        allocator.begin_block()
        assert allocator.slot_for(200) == 0

    def test_overflow_raises(self):
        allocator = RegisterAllocator(rrf_words=2, crf_values=[])
        allocator.slot_for(1)
        allocator.slot_for(2)
        with pytest.raises(EncodingError):
            allocator.slot_for(3)


class TestWholeProgram:
    def test_encode_mapped_kernel(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        mapping = map_kernel(kernel.cdfg, get_config("HET1"),
                             FlowOptions.aware())
        program = assemble(mapping, kernel.cdfg)
        images = encode_program(program)
        for tile, blocks in images.items():
            for name, words in blocks:
                assert len(words) == program.blocks[name].words(tile)
                for word in words:
                    assert 0 <= word < (1 << 40)
                    decode_word(word)  # must not raise
