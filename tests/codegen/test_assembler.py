"""Assembler tests: stream construction, pnop folding, fit checking."""

import pytest

from repro.arch.configs import get_config, make_cgra
from repro.codegen.assembler import assemble
from repro.errors import ContextOverflowError
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel


@pytest.fixture(scope="module")
def fir_program():
    kernel = get_kernel("fir", n_samples=8, n_taps=4)
    mapping = map_kernel(kernel.cdfg, get_config("HOM64"),
                         FlowOptions.basic())
    return kernel, mapping, assemble(mapping, kernel.cdfg)


class TestStreams:
    def test_words_match_mapping_accounting(self, fir_program):
        kernel, mapping, program = fir_program
        words = mapping.tile_words()
        for tile in range(16):
            assert program.tile_words(tile) == words[tile]

    def test_streams_cover_blocks(self, fir_program):
        kernel, mapping, program = fir_program
        assert set(program.blocks) == set(kernel.cdfg.blocks)

    def test_instruction_cycles_monotonic(self, fir_program):
        _, _, program = fir_program
        for block in program.blocks.values():
            for stream in block.tile_streams.values():
                cycles = [instr.cycle for instr in stream]
                assert cycles == sorted(cycles)

    def test_pnops_fill_gaps_exactly(self, fir_program):
        _, _, program = fir_program
        for block in program.blocks.values():
            for stream in block.tile_streams.values():
                cursor = 0
                for instr in stream:
                    assert instr.cycle == cursor, \
                        "streams must be gap-free after pnop folding"
                    cursor += instr.issue_cycles

    def test_no_trailing_pnop(self, fir_program):
        _, _, program = fir_program
        for block in program.blocks.values():
            for stream in block.tile_streams.values():
                if stream:
                    assert stream[-1].kind != "pnop"

    def test_symbol_homes_complete(self, fir_program):
        kernel, mapping, program = fir_program
        for symbol in kernel.cdfg.symbols:
            assert symbol in program.symbol_inits


class TestFitEnforcement:
    def test_overflow_detected_on_small_config(self):
        # A context-unaware mapping loaded onto a tiny-CM CGRA must be
        # rejected at assembly time, like hardware would reject it.
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        tiny = make_cgra("tiny8", cm_depths=[6] * 16)
        mapping = map_kernel(kernel.cdfg, tiny, FlowOptions.basic())
        if mapping.fits:
            pytest.skip("mapping happened to fit the tiny config")
        with pytest.raises(ContextOverflowError):
            assemble(mapping, kernel.cdfg, enforce_fit=True)

    def test_enforce_fit_can_be_deferred(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        tiny = make_cgra("tiny8", cm_depths=[6] * 16)
        mapping = map_kernel(kernel.cdfg, tiny, FlowOptions.basic())
        program = assemble(mapping, kernel.cdfg, enforce_fit=False)
        assert program.total_words() > 0
