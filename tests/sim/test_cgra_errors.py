"""CGRA simulator failure modes: unsound inputs must fail loudly."""

import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import BlockProgram, Program
from repro.codegen.isa import Instruction, Source
from repro.errors import ContextOverflowError, SimulationError
from repro.ir.cdfg import Exit, Jump
from repro.ir.opcodes import Opcode
from repro.sim.cgra import CGRASimulator


def empty_streams(cgra):
    return {tile: [] for tile in range(cgra.n_tiles)}


def make_program(cgra, blocks, symbol_inits=None):
    return Program("synthetic", cgra, blocks, entry=next(iter(blocks)),
                   const_images={t: () for t in range(cgra.n_tiles)},
                   symbol_inits=symbol_inits or {})


class TestLoadTimeChecks:
    def test_context_overflow_refused(self):
        cgra = get_config("HET2")
        streams = empty_streams(cgra)
        # Tile 8 has CM16 on HET2; give it 17 instructions.
        streams[8] = [Instruction.mov(Source.crf(0), dest_uid=100 + i,
                                      cycle=i) for i in range(17)]
        block = BlockProgram("b", 17, streams, Exit(), [], [])
        program = Program("overflow", cgra, {"b": block}, "b",
                          {t: (0,) for t in range(cgra.n_tiles)}, {})
        with pytest.raises(ContextOverflowError):
            CGRASimulator(program)

    def test_non_program_rejected(self):
        with pytest.raises(SimulationError):
            CGRASimulator("not a program")


class TestRunTimeChecks:
    def test_missing_rf_value_detected(self):
        cgra = get_config("HOM64")
        streams = empty_streams(cgra)
        # An ADD reading a value nobody produced.
        streams[0] = [Instruction.op(
            Opcode.ADD, [Source.rf(999), Source.rf(998)], dest_uid=1,
            cycle=0)]
        block = BlockProgram("b", 1, streams, Exit(), [], [])
        with pytest.raises(SimulationError):
            CGRASimulator(make_program(cgra, {"b": block})).run()

    def test_stale_port_read_detected(self):
        cgra = get_config("HOM64")
        streams = empty_streams(cgra)
        neighbor = cgra.neighbors(0)[0]
        # Tile `neighbor` produces value 7 at cycle 0; tile 0 tries to
        # read that port at cycle 2 — one cycle too late.
        streams[neighbor] = [Instruction.mov(Source.crf(0), dest_uid=7,
                                             cycle=0)]
        streams[0] = [Instruction.op(
            Opcode.NEG, [Source.port(neighbor, 7)], dest_uid=8,
            cycle=2)]
        block = BlockProgram("b", 3, streams, Exit(), [], [])
        program = Program("stale", cgra, {"b": block}, "b",
                          {t: (0,) for t in range(cgra.n_tiles)}, {})
        with pytest.raises(SimulationError):
            CGRASimulator(program).run()

    def test_uninitialised_symbol_read_detected(self):
        cgra = get_config("HOM64")
        streams = empty_streams(cgra)
        block = BlockProgram("b", 1, streams, Exit(),
                             [("ghost", 0, 5)], [])
        with pytest.raises(SimulationError):
            CGRASimulator(make_program(cgra, {"b": block})).run()

    def test_runaway_loop_guard(self):
        cgra = get_config("HOM64")
        streams = empty_streams(cgra)
        block = BlockProgram("spin", 1, streams, Jump("spin"), [], [])
        program = make_program(cgra, {"spin": block})
        simulator = CGRASimulator(program, max_block_executions=50)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_port_value_lives_exactly_one_cycle(self):
        cgra = get_config("HOM64")
        streams = empty_streams(cgra)
        neighbor = cgra.neighbors(0)[0]
        streams[neighbor] = [Instruction.mov(Source.crf(0), dest_uid=7,
                                             cycle=0)]
        # Reading at exactly cycle 1 works.
        streams[0] = [Instruction.op(
            Opcode.NEG, [Source.port(neighbor, 7)], dest_uid=8,
            cycle=1)]
        block = BlockProgram("b", 2, streams, Exit(), [], [])
        program = Program("fresh", cgra, {"b": block}, "b",
                          {t: (0,) for t in range(cgra.n_tiles)}, {})
        run = CGRASimulator(program).run()
        assert run.cycles == 2
        assert run.activity.tiles[0].port_reads == 1
