"""CGRA simulator tests: functional equivalence + activity sanity."""

import numpy as np
import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel

SMALL_PARAMS = {
    "fir": {"n_samples": 8, "n_taps": 4},
    "matmul": {"size": 4, "j_unroll": 2},
    "convolution": {"image": 6},
    "dc_filter": {"n_samples": 16},
    "fft": {"n_points": 8},
}


def pipeline(kernel, config="HET1", options=None, seed=0):
    options = options or FlowOptions.aware()
    mapping = map_kernel(kernel.cdfg, get_config(config), options)
    program = assemble(mapping, kernel.cdfg)
    inputs = kernel.make_inputs(np.random.default_rng(seed))
    memory = kernel.make_memory(inputs)
    run = CGRASimulator(program, memory).run()
    return inputs, run


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_small_kernels_bit_exact(name):
    kernel = get_kernel(name, **SMALL_PARAMS[name])
    inputs, run = pipeline(kernel)
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        assert run.region(kernel.cdfg, region) == expected[region]


class TestActivityConsistency:
    @pytest.fixture(scope="class")
    def fir_run(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        inputs, run = pipeline(kernel)
        return kernel, run

    def test_cycle_accounting_closes(self, fir_run):
        # active + gated + idle must cover tiles x cycles exactly.
        _, run = fir_run
        activity = run.activity
        for tile in activity.tiles:
            covered = (tile.active_cycles + tile.gated_cycles
                       + tile.idle_cycles)
            assert covered == activity.cycles

    def test_cm_reads_equal_issued_plus_pnops(self, fir_run):
        _, run = fir_run
        for tile in run.activity.tiles:
            assert tile.cm_reads == tile.issued + tile.pnop_fetches

    def test_memory_counters_match(self, fir_run):
        _, run = fir_run
        activity = run.activity
        assert activity.dmem_reads == activity.total("loads")
        assert activity.dmem_writes == activity.total("stores")

    def test_cycles_match_static_formula(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        mapping = map_kernel(kernel.cdfg, get_config("HET1"),
                             FlowOptions.aware())
        program = assemble(mapping, kernel.cdfg)
        inputs = kernel.make_inputs(np.random.default_rng(0))
        run = CGRASimulator(program, kernel.make_memory(inputs)).run()
        assert run.cycles == mapping.static_cycles(run.block_counts)


class TestCpuModel:
    def test_cpu_matches_reference(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        inputs = kernel.make_inputs(np.random.default_rng(1))
        run = CPUModel(kernel.cdfg).run(kernel.make_memory(inputs))
        expected = kernel.reference(inputs)
        assert run.region(kernel.cdfg, "y") == expected["y"]

    def test_cpu_cycles_exceed_instruction_count(self):
        kernel = get_kernel("fir", n_samples=8, n_taps=4)
        run = CPUModel(kernel.cdfg).run(
            kernel.make_memory(kernel.make_inputs()))
        assert run.cycles >= run.instructions

    def test_cgra_outperforms_cpu(self):
        kernel = get_kernel("fir")  # paper-scale
        inputs, run = pipeline(kernel)
        cpu = CPUModel(kernel.cdfg).run(kernel.make_memory(inputs))
        assert cpu.cycles > run.cycles
