"""Unit tests for the data-memory model."""

import pytest

from repro.errors import SimulationError
from repro.sim.memory import DataMemory


class TestDataMemory:
    def test_size_construction(self):
        mem = DataMemory(16)
        assert len(mem) == 16
        assert mem.load(0) == 0

    def test_image_construction_wraps(self):
        mem = DataMemory([0xFFFFFFFF, 5])
        assert mem.load(0) == -1
        assert mem.load(1) == 5

    def test_store_load(self):
        mem = DataMemory(4)
        mem.store(2, -7)
        assert mem.load(2) == -7

    def test_counters(self):
        mem = DataMemory(4)
        mem.store(0, 1)
        mem.load(0)
        mem.load(0)
        assert mem.writes == 1
        assert mem.reads == 2

    def test_bounds_checked(self):
        mem = DataMemory(4)
        with pytest.raises(SimulationError):
            mem.load(4)
        with pytest.raises(SimulationError):
            mem.store(-1, 0)

    def test_snapshot_is_copy(self):
        mem = DataMemory(4)
        snap = mem.snapshot()
        mem.store(0, 9)
        assert snap[0] == 0

    def test_region(self):
        mem = DataMemory([1, 2, 3, 4, 5])
        assert mem.region(1, 3) == [2, 3, 4]
