"""Unit tests for the event-driven cycle-level executor.

The executor is the second execution backend — the point of these
tests is partly ordinary correctness (outputs, activity accounting)
and partly the *differential contract*: for every program the
lockstep simulator can run, the executor must produce bit-identical
outputs and a cycle count that never exceeds the analytic one (the
schedule's trailing idle is the only legitimate gap).
"""

import numpy as np
import pytest

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.errors import SimulationError
from repro.kernels import get_kernel
from repro.mapping.flow import VARIANTS, map_kernel
from repro.sim.cgra import CGRASimulator
from repro.sim.executor import CycleExecutor


def build_program(kernel_name="dc_filter", config="HOM64",
                  variant="full"):
    kernel = get_kernel(kernel_name)
    mapping = map_kernel(kernel.cdfg, get_config(config),
                         VARIANTS[variant]())
    options = mapping.options
    return kernel, assemble(mapping, kernel.cdfg,
                            enforce_fit=options.ecmap)


def memory_for(kernel, seed=7):
    return kernel.make_memory(
        kernel.make_inputs(np.random.default_rng(seed)))


class TestCycleExecutor:
    def test_outputs_match_the_reference(self):
        kernel, program = build_program()
        inputs = kernel.make_inputs(np.random.default_rng(7))
        run = CycleExecutor(program, kernel.make_memory(inputs)).run()
        expected = kernel.reference(inputs)
        for region in kernel.output_regions:
            assert run.region(kernel.cdfg, region) == expected[region]

    def test_outputs_match_the_lockstep_simulator(self):
        kernel, program = build_program("fir", "HET1")
        lockstep = CGRASimulator(program, memory_for(kernel)).run()
        measured = CycleExecutor(program, memory_for(kernel)).run()
        for region in kernel.output_regions:
            assert measured.region(kernel.cdfg, region) \
                == lockstep.region(kernel.cdfg, region)

    def test_cycles_never_exceed_the_analytic_count(self):
        # The lockstep simulator charges the mapper's scheduled block
        # lengths; the executor measures the stream.  The measured
        # count can only be smaller (trailing idle) — a larger count
        # would mean the schedule under-declared a block.
        for variant in ("basic", "full"):
            kernel, program = build_program(variant=variant)
            lockstep = CGRASimulator(program, memory_for(kernel)).run()
            measured = CycleExecutor(program, memory_for(kernel)).run()
            assert measured.cycles <= lockstep.cycles
            assert measured.cycles > 0

    def test_block_durations_are_measured_not_declared(self):
        kernel, program = build_program()
        run = CycleExecutor(program, memory_for(kernel)).run()
        for name, duration in run.block_durations.items():
            block = program.blocks[name]
            last = max((instr.cycle + instr.issue_cycles
                        for stream in block.tile_streams.values()
                        for instr in stream), default=0)
            assert duration == last
            assert duration <= block.length

    def test_activity_counters_are_internally_consistent(self):
        kernel, program = build_program()
        run = CycleExecutor(program, memory_for(kernel)).run()
        activity = run.activity
        executions = sum(run.block_counts.values())
        assert activity.block_transitions == executions
        assert activity.cycles == sum(
            run.block_durations[name] * count
            for name, count in run.block_counts.items())
        for stats in activity.tiles:
            # Every tile accounts for the full measured span: active
            # issue slots + gated PNOP coverage + idle.
            assert stats.active_cycles + stats.gated_cycles \
                + stats.idle_cycles == activity.cycles
        assert activity.dmem_reads == run.memory.reads
        assert activity.dmem_writes == run.memory.writes

    def test_dmem_traffic_matches_the_lockstep_simulator(self):
        kernel, program = build_program("fir")
        lockstep = CGRASimulator(program, memory_for(kernel)).run()
        measured = CycleExecutor(program, memory_for(kernel)).run()
        assert measured.activity.dmem_reads \
            == lockstep.activity.dmem_reads
        assert measured.activity.dmem_writes \
            == lockstep.activity.dmem_writes

    def test_rejects_non_program(self):
        with pytest.raises(SimulationError, match="expected Program"):
            CycleExecutor(object())

    def test_block_execution_bound_trips(self):
        kernel, program = build_program()
        with pytest.raises(SimulationError, match="block executions"):
            CycleExecutor(program, memory_for(kernel),
                          max_block_executions=1).run()
