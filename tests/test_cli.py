"""CLI smoke tests (small but real end-to-end paths)."""

import pytest

from repro.cli import main


class TestCli:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "fir" in out
        assert "fft" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "HOM64" in out

    def test_map_dc_filter(self, capsys):
        assert main(["map", "dc_filter", "--config", "HET1"]) == 0
        out = capsys.readouterr().out
        assert "fits: True" in out
        assert "T16" in out

    def test_run_dc_filter(self, capsys):
        assert main(["run", "dc_filter", "--config", "HET1"]) == 0
        out = capsys.readouterr().out
        assert "verified OK" in out
        assert "speedup" in out

    def test_energy_dc_filter(self, capsys):
        assert main(["energy", "dc_filter", "--config", "HET1",
                     "--flow", "full"]) == 0
        out = capsys.readouterr().out
        assert "uJ" in out
        assert "leakage" in out

    def test_bad_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "unknown_kernel"])
