"""CLI smoke tests (small but real end-to-end paths)."""

import json

import pytest

from repro.cli import main

#: A tiny but real sweep: two dc_filter points.
SWEEP_ARGS = ["sweep", "--kernels", "dc_filter", "--configs", "HOM64",
              "--variants", "basic,full"]


def run_json(capsys, argv):
    """Run the CLI, parse the stdout payload."""
    code = main(argv)
    out = capsys.readouterr().out
    return code, json.loads(out)


class TestCli:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "fir" in out
        assert "fft" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "HOM64" in out

    def test_map_dc_filter(self, capsys):
        assert main(["map", "dc_filter", "--config", "HET1"]) == 0
        out = capsys.readouterr().out
        assert "fits: True" in out
        assert "T16" in out

    def test_run_dc_filter(self, capsys):
        assert main(["run", "dc_filter", "--config", "HET1"]) == 0
        out = capsys.readouterr().out
        assert "verified OK" in out
        assert "speedup" in out

    def test_energy_dc_filter(self, capsys):
        assert main(["energy", "dc_filter", "--config", "HET1",
                     "--flow", "full"]) == 0
        out = capsys.readouterr().out
        assert "uJ" in out
        assert "leakage" in out

    def test_bad_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "unknown_kernel"])


class TestSweepJson:
    def test_cold_then_warm_computed_counts(self, tmp_path, capsys):
        argv = SWEEP_ARGS + ["--json", "--cache-dir", str(tmp_path)]
        code, cold = run_json(capsys, argv)
        assert code == 0
        assert cold["summary"]["computed"] == 2
        assert cold["summary"]["crashed"] == 0
        code, warm = run_json(capsys, argv)
        assert code == 0
        # The machine-checkable warm-cache assertion CI relies on.
        assert warm["summary"]["computed"] == 0
        assert warm["summary"]["cache_hits"] == 2
        assert [p["point"] for p in warm["points"]] \
            == [p["point"] for p in cold["points"]]

    def test_shards_merge_back_to_the_full_sweep(self, tmp_path,
                                                 capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        _, full = run_json(capsys, SWEEP_ARGS + ["--json"] + cache)
        files = []
        for index in range(2):
            argv = SWEEP_ARGS + ["--json", "--shard", f"{index}/2"] \
                + cache
            code, payload = run_json(capsys, argv)
            assert code == 0
            assert payload["shard"] == {"index": index, "total": 2}
            path = tmp_path / f"shard-{index}.json"
            path.write_text(json.dumps(payload))
            files.append(str(path))
        code, merged = run_json(capsys, ["merge", "--json"] + files)
        assert code == 0
        assert merged["points"] == full["points"]

    def test_merge_rejects_incomplete_shards(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        _, payload = run_json(
            capsys, SWEEP_ARGS + ["--json", "--shard", "0/2"] + cache)
        path = tmp_path / "only.json"
        path.write_text(json.dumps(payload))
        assert main(["merge", str(path)]) == 1
        err = capsys.readouterr().err
        assert "cover" in err
        # The diagnostic names the absent shard index and which file
        # supplied the one that *is* there.
        assert "missing shard indices [1] of 2" in err
        assert "only.json" in err

    def test_bad_shard_rejected(self, capsys):
        assert main(SWEEP_ARGS + ["--shard", "4/2"]) == 1
        assert "shard index" in capsys.readouterr().err


class TestDiffCommand:
    #: Two dc_filter points through both backends — small but real.
    DIFF_ARGS = ["diff", "--kernels", "dc_filter", "--configs",
                 "HOM64", "--variants", "basic,full", "--no-cache",
                 "--quiet"]

    def test_fast_subset_is_within_tolerance(self, capsys):
        assert main(self.DIFF_ARGS) == 0
        out = capsys.readouterr().out
        assert "all within tolerance" in out

    def test_json_report_shape(self, capsys):
        code, payload = run_json(capsys, self.DIFF_ARGS + ["--json"])
        assert code == 0
        assert payload["ok"] is True
        assert payload["backends"] == ["analytic", "cycle"]
        assert payload["mismatches"] == 0
        assert payload["summary"]["points"] == 2
        for record in payload["points"]:
            assert record["status"] == "ok"
            assert record["output_match"] is True
            assert record["cycles"]["analytic"] \
                >= record["cycles"]["cycle"]

    def test_out_writes_the_artifact_file(self, tmp_path, capsys):
        report = tmp_path / "diff-report.json"
        assert main(self.DIFF_ARGS + ["--out", str(report)]) == 0
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["tolerance"] == {"abs": 2, "rel": 0.01}

    def test_zero_tolerance_flags_the_trailing_idle(self, capsys):
        # With tolerances forced to zero, the known one-cycle gap
        # between the backends becomes a reported mismatch and the
        # exit code is the differential verdict (4), so the gate in
        # CI genuinely bites.
        code = main(self.DIFF_ARGS + ["--abs-tol", "0",
                                      "--rel-tol", "0"])
        assert code == 4
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_unknown_backend_rejected(self, capsys):
        assert main(self.DIFF_ARGS
                    + ["--backends", "analytic,sat"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_identical_backends_rejected(self, capsys):
        assert main(self.DIFF_ARGS
                    + ["--backends", "cycle,cycle"]) == 1
        assert "distinct" in capsys.readouterr().err


class TestSweepBackendFlag:
    def test_cycle_backend_sweep(self, capsys):
        code, payload = run_json(
            capsys, SWEEP_ARGS + ["--json", "--no-cache",
                                  "--backend", "cycle"])
        assert code == 0
        assert payload["summary"]["crashed"] == 0
        for record in payload["points"]:
            assert record["spec"]["backend"] == "cycle"
            assert record["point"]["output_digest"]

    def test_unknown_backend_rejected_before_any_work(self, capsys):
        assert main(SWEEP_ARGS + ["--backend", "typo"]) == 1
        assert "unknown backend" in capsys.readouterr().err


class TestMergeDiagnostics:
    """`repro merge` failures are one-line diagnoses naming the
    offending shard indices and files — never bare tracebacks."""

    def shard_file(self, capsys, tmp_path, index, total=2, seed=None):
        argv = list(SWEEP_ARGS) + ["--json", "--shard",
                                   f"{index}/{total}", "--cache-dir",
                                   str(tmp_path / "cache")]
        if seed is not None:
            argv += ["--seed", str(seed)]
        _, payload = run_json(capsys, argv)
        path = tmp_path / f"shard-{index}-{seed}.json"
        path.write_text(json.dumps(payload))
        return path

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        ghost = tmp_path / "ghost.json"
        assert main(["merge", str(ghost)]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "ghost.json" in err

    def test_duplicate_shard_names_both_files(self, tmp_path,
                                              capsys):
        original = self.shard_file(capsys, tmp_path, 0)
        twin = tmp_path / "twin.json"
        twin.write_text(original.read_text())
        assert main(["merge", str(original), str(twin)]) == 1
        err = capsys.readouterr().err
        assert "shard 0 appears more than once" in err
        assert original.name in err
        assert twin.name in err

    def test_fingerprint_mismatch_names_both_files(self, tmp_path,
                                                   capsys):
        ours = self.shard_file(capsys, tmp_path, 0)
        theirs = self.shard_file(capsys, tmp_path, 1, seed=99)
        assert main(["merge", str(ours), str(theirs)]) == 1
        err = capsys.readouterr().err
        assert "different sweeps" in err
        assert ours.name in err
        assert theirs.name in err

    def test_missing_shard_lists_absent_indices(self, tmp_path,
                                                capsys):
        have = [self.shard_file(capsys, tmp_path, index, total=4)
                for index in (0, 2)]
        assert main(["merge", str(have[0]), str(have[1])]) == 1
        err = capsys.readouterr().err
        assert "missing shard indices [1, 3] of 4" in err
        assert have[0].name in err and have[1].name in err

    def test_record_without_a_point_names_the_file(self, tmp_path,
                                                   capsys):
        path = self.shard_file(capsys, tmp_path, 0, total=1)
        payload = json.loads(path.read_text())
        del payload["points"][0]["point"]
        path.write_text(json.dumps(payload))
        assert main(["merge", str(path)]) == 1
        err = capsys.readouterr().err
        assert "no 'point'" in err
        assert path.name in err

    def test_corrupt_huge_shard_total_diagnoses_promptly(
            self, tmp_path, capsys):
        # A hand-edited total of 10**12 must produce the coverage
        # diagnostic, not materialise a trillion-element range.
        path = self.shard_file(capsys, tmp_path, 0, total=2)
        payload = json.loads(path.read_text())
        payload["shard"]["total"] = 10**12
        path.write_text(json.dumps(payload))
        assert main(["merge", str(path)]) == 1
        err = capsys.readouterr().err
        assert "cover" in err
        assert "of 1000000000000" in err


class TestCacheCommand:
    def test_stats_prune_clear_cycle(self, tmp_path, capsys):
        cache_dir = ["--cache-dir", str(tmp_path)]
        assert main(SWEEP_ARGS + cache_dir) == 0
        capsys.readouterr()

        code, stats = run_json(capsys,
                               ["cache", "stats", "--json"] + cache_dir)
        assert code == 0
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0

        assert main(["cache", "prune", "--max-bytes", "0"]
                    + cache_dir) == 0
        assert "evicted 2" in capsys.readouterr().out

        assert main(SWEEP_ARGS + cache_dir) == 0
        capsys.readouterr()
        assert main(["cache", "clear"] + cache_dir) == 0
        assert "cleared 2" in capsys.readouterr().out
        _, stats = run_json(capsys,
                            ["cache", "stats", "--json"] + cache_dir)
        assert stats["entries"] == 0

    def test_human_stats(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "byte cap" in out

    def test_prune_without_cap_errors(self, tmp_path, capsys,
                                      monkeypatch):
        from repro.runtime.cache import ENV_CACHE_MAX_BYTES
        monkeypatch.delenv(ENV_CACHE_MAX_BYTES, raising=False)
        assert main(["cache", "prune", "--cache-dir",
                     str(tmp_path)]) == 1
        assert "no byte cap" in capsys.readouterr().err


class TestFigureFlags:
    def test_figure_shard_json_is_a_partial_sweep(self, tmp_path,
                                                  capsys):
        # 1/8 of fig10's 21 points = 2-3 dc-filter-sized mappings.
        code, payload = run_json(capsys, [
            "figure", "fig10", "--shard", "0/8", "--json",
            "--cache-dir", str(tmp_path)])
        assert code == 0
        assert payload["shard"] == {"index": 0, "total": 8}
        assert payload["spec_total"] == 21
        assert 0 < len(payload["points"]) < 21

    def test_unshardable_figure_errors(self, capsys):
        assert main(["figure", "fig9", "--shard", "0/2"]) == 1
        assert "no prewarmable" in capsys.readouterr().err

    def test_shard_without_cache_or_json_rejected(self, capsys):
        assert main(SWEEP_ARGS + ["--shard", "0/2", "--no-cache"]) == 1
        assert "discards all results" in capsys.readouterr().err
        assert main(["figure", "fig10", "--shard", "0/2",
                     "--no-cache"]) == 1
        assert "discards all results" in capsys.readouterr().err

    def test_figure_json_data(self, capsys):
        code, data = run_json(capsys, ["figure", "fig11", "--json"])
        assert code == 0
        assert data["CPU"]["ratio"] == 1.0
        assert "HOM64" in data

    def test_figure_choices_match_the_canonical_listing(self):
        # The parser keeps a literal copy of FIGURE_NAMES so that
        # building it never imports the eval/experiments stack; this
        # pins the two against drift.
        import argparse

        from repro.cli import _parser
        from repro.eval.experiments import FIGURE_NAMES
        parser = _parser()
        commands = next(action for action in parser._actions
                        if isinstance(action,
                                      argparse._SubParsersAction))
        name = next(action
                    for action in commands.choices["figure"]._actions
                    if action.dest == "name")
        assert tuple(name.choices) == tuple(FIGURE_NAMES)
