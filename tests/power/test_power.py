"""Energy and area model tests: arithmetic and paper anchors."""

import pytest

from repro.arch.configs import CGRA_CONFIGS, get_config
from repro.power import tech
from repro.power.area import AreaModel, cgra_area, cpu_area
from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.sim.activity import ActivityCounters


class TestTechRelations:
    def test_cm_read_grows_with_depth(self):
        assert (tech.cm_read_pj(16) < tech.cm_read_pj(32)
                < tech.cm_read_pj(64))

    def test_tile_leak_grows_with_depth(self):
        assert tech.tile_leak_pj(16) < tech.tile_leak_pj(64)

    def test_cm40_percent_anchor(self):
        # Paper Sec I: a 64-word CM is ~40% of the PE area.
        cm = 64 * tech.AREA_CM_WORD_UM2
        pe = tech.AREA_PE_BASE_UM2 + cm
        assert cm / pe == pytest.approx(0.40, abs=0.01)

    def test_gated_cheaper_than_fetch(self):
        assert tech.GATED_CYCLE_PJ < tech.cm_read_pj(16)


class TestAreaModel:
    def test_hom64_about_twice_cpu(self):
        # Fig 11 headline.
        ratio = AreaModel().ratio_to_cpu(get_config("HOM64"))
        assert 1.7 <= ratio <= 2.3

    def test_het_configs_smaller_than_hom64(self):
        model = AreaModel()
        hom64 = model.cgra_total(get_config("HOM64"))
        for name in ("HOM32", "HET1", "HET2"):
            assert model.cgra_total(get_config(name)) < hom64

    def test_ordering_follows_cm_totals(self):
        model = AreaModel()
        totals = {name: model.cgra_total(cgra)
                  for name, cgra in CGRA_CONFIGS.items()}
        assert totals["HET1"] > totals["HET2"]
        assert totals["HET2"] == pytest.approx(totals["HOM32"])

    def test_breakdown_sums_to_total(self):
        model = AreaModel()
        cgra = get_config("HET1")
        assert (sum(model.cgra_breakdown(cgra).values())
                == pytest.approx(model.cgra_total(cgra)))

    def test_helpers(self):
        assert cgra_area(get_config("HOM64")) > 0
        assert cpu_area() > 0


def synthetic_activity(n_tiles=16, cycles=100):
    activity = ActivityCounters(n_tiles)
    activity.cycles = cycles
    for tile in activity.tiles:
        tile.alu_ops = 10
        tile.cm_reads = 12
        tile.active_cycles = 10
        tile.pnop_fetches = 2
        tile.gated_cycles = 40
        tile.idle_cycles = 50
        tile.rf_reads = 15
        tile.rf_writes = 10
    activity.dmem_reads = 20
    activity.dmem_writes = 10
    activity.block_transitions = 5
    return activity


class TestEnergyModel:
    def test_breakdown_total(self):
        breakdown = EnergyBreakdown({"a": 10.0, "b": 5.0})
        assert breakdown.total_pj == 15.0
        assert breakdown.total_uj == pytest.approx(15e-6)
        assert breakdown.fraction("a") == pytest.approx(2 / 3)

    def test_same_activity_cheaper_on_small_cms(self):
        activity = synthetic_activity()
        model = EnergyModel()
        hom64 = model.cgra_energy(activity, get_config("HOM64"))
        het2 = model.cgra_energy(activity, get_config("HET2"))
        assert het2.total_pj < hom64.total_pj

    def test_leakage_scales_with_cycles(self):
        model = EnergyModel()
        short = synthetic_activity(cycles=100)
        long = synthetic_activity(cycles=1000)
        cgra = get_config("HOM64")
        assert (model.cgra_energy(long, cgra).parts["leakage"]
                == pytest.approx(
                    10 * model.cgra_energy(short, cgra).parts["leakage"]))

    def test_requires_config(self):
        with pytest.raises(ValueError):
            EnergyModel().cgra_energy(synthetic_activity())

    def test_cpu_energy_positive_components(self):
        from repro.kernels import get_kernel
        from repro.sim.cpu import CPUModel
        kernel = get_kernel("dc_filter", n_samples=8)
        run = CPUModel(kernel.cdfg).run(
            kernel.make_memory(kernel.make_inputs()))
        breakdown = EnergyModel().cpu_energy(run)
        assert breakdown.parts["fetch"] > 0
        assert breakdown.parts["leakage"] > 0
        assert breakdown.total_uj > 0
