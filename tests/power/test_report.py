"""Kernel energy record tests."""

import numpy as np

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.power.report import record_cgra_run, record_cpu_run
from repro.sim.cgra import CGRASimulator
from repro.sim.cpu import CPUModel


def test_records_compare():
    kernel = get_kernel("dc_filter", n_samples=16)
    cgra = get_config("HET1")
    mapping = map_kernel(kernel.cdfg, cgra, FlowOptions.aware())
    program = assemble(mapping, kernel.cdfg)
    inputs = kernel.make_inputs(np.random.default_rng(0))
    memory = kernel.make_memory(inputs)
    cgra_run = CGRASimulator(program, memory).run()
    cpu_run = CPUModel(kernel.cdfg).run(memory)

    cgra_record = record_cgra_run("aware@HET1", cgra_run, cgra)
    cpu_record = record_cpu_run("or1k", cpu_run)

    assert cgra_record.total_uj > 0
    assert cpu_record.total_uj > 0
    assert cgra_record.gain_over(cpu_record) > 1.0
    assert cgra_record.dominant_component() in cgra_record.breakdown.parts
    assert "uJ" in repr(cgra_record)
