"""repro.perf — harness, schema and the regression gate."""

import json

import pytest

from repro import cli
from repro.errors import ReproError
from repro.perf import (
    BENCH_JSON_SCHEMA,
    BenchCase,
    bench_payload,
    compare_benchmarks,
    default_cases,
    load_bench_file,
    parse_bench_payload,
    parse_case,
    profile_case,
    render_bench,
    render_comparison,
    run_bench,
)


class TestCases:
    def test_parse_case(self):
        case = parse_case("fft@hom32/full")
        assert case == BenchCase("fft", "HOM32", "full")
        assert case.name == "fft@HOM32/full"

    @pytest.mark.parametrize("text", [
        "fft", "fft@HOM32", "nope@HOM32/full", "fft@NOPE/full",
        "fft@HOM32/nope"])
    def test_parse_case_rejects_junk(self, text):
        with pytest.raises(ReproError):
            parse_case(text)

    def test_default_cases_are_the_tracked_suite(self):
        from repro.kernels import PAPER_KERNEL_ORDER
        cases = default_cases()
        assert [c.kernel for c in cases] == list(PAPER_KERNEL_ORDER)
        assert {c.config for c in cases} == {"HOM32"}
        assert {c.variant for c in cases} == {"full"}

    def test_default_cases_axes(self):
        cases = default_cases(kernels=("fir",),
                              configs=("HOM32", "het1"),
                              variants=("basic", "full"))
        assert len(cases) == 4
        assert {c.config for c in cases} == {"HOM32", "HET1"}


class TestHarness:
    def test_run_bench_payload_shape(self):
        results = run_bench([BenchCase("dc_filter", "HOM32", "basic")],
                            warmup=0, repeat=2)
        payload = bench_payload(results, warmup=0, repeat=2,
                                reducer="min", created_unix=123)
        parsed = parse_bench_payload(payload)
        assert parsed["schema"] == BENCH_JSON_SCHEMA
        (case,) = parsed["cases"]
        assert case["case"] == "dc_filter@HOM32/basic"
        assert case["seconds"] == min(case["samples"])
        assert len(case["samples"]) == 2
        assert case["counts"]["mapped"] is True
        assert case["counts"]["ops"] > 0
        assert payload["total_seconds"] == case["seconds"]
        assert payload["host"]["python"]
        assert render_bench(payload)  # renders without blowing up

    def test_run_bench_rejects_bad_knobs(self):
        case = BenchCase("dc_filter", "HOM32", "basic")
        with pytest.raises(ReproError):
            run_bench([case], repeat=0)
        with pytest.raises(ReproError):
            run_bench([case], reducer="p99")

    def test_profile_case_reports_hot_functions(self):
        text, result = profile_case(
            BenchCase("dc_filter", "HOM32", "basic"), top=5)
        assert "map_kernel" in text
        assert result is not None


def _payload_with(seconds_by_case):
    cases = [{"case": name, "kernel": name.split("@")[0],
              "config": "HOM32", "variant": "full",
              "seconds": seconds, "samples": [seconds],
              "counts": {"mapped": True}}
             for name, seconds in seconds_by_case.items()]
    return bench_payload(cases, warmup=0, repeat=1, reducer="min")


class TestCompare:
    def test_detects_injected_regression(self):
        baseline = _payload_with({"a@HOM32/full": 1.0,
                                  "b@HOM32/full": 2.0})
        current = _payload_with({"a@HOM32/full": 1.1,
                                 "b@HOM32/full": 3.0})
        rows, regressions = compare_benchmarks(current, baseline, 25.0)
        assert len(rows) == 2
        assert [r["case"] for r in regressions] == ["b@HOM32/full"]
        assert regressions[0]["delta_pct"] == 50.0
        assert "REGRESSION" in render_comparison(rows, regressions,
                                                 25.0)

    def test_faster_and_new_cases_are_fine(self):
        baseline = _payload_with({"a@HOM32/full": 2.0})
        current = _payload_with({"a@HOM32/full": 1.0,
                                 "new@HOM32/full": 9.0})
        _, regressions = compare_benchmarks(current, baseline, 25.0)
        assert regressions == []

    def test_load_bench_file_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"kind\": \"sweep\"}")
        with pytest.raises(ReproError):
            load_bench_file(path)
        path.write_text("not json")
        with pytest.raises(ReproError):
            load_bench_file(path)


class TestCLI:
    def test_bench_compare_exits_nonzero_on_regression(self, tmp_path,
                                                       capsys):
        # An impossible-to-beat baseline: any real timing is a
        # regression beyond every threshold.
        baseline = _payload_with({"dc_filter@HOM32/basic": 1e-9})
        path = tmp_path / "BENCH_base.json"
        path.write_text(json.dumps(baseline))
        code = cli.main(["bench", "--cases", "dc_filter@HOM32/basic",
                         "--warmup", "0", "--repeat", "1", "--quiet",
                         "--compare", str(path)])
        assert code == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_compare_passes_generous_baseline(self, tmp_path,
                                                    capsys):
        baseline = _payload_with({"dc_filter@HOM32/basic": 1e9})
        path = tmp_path / "BENCH_base.json"
        path.write_text(json.dumps(baseline))
        code = cli.main(["bench", "--cases", "dc_filter@HOM32/basic",
                         "--warmup", "0", "--repeat", "1", "--quiet",
                         "--compare", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "no case regressed" in out

    def test_bench_json_and_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        code = cli.main(["bench", "--cases", "dc_filter@HOM32/basic",
                         "--warmup", "0", "--repeat", "1", "--quiet",
                         "--json", "--out", str(out_file)])
        assert code == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_file.read_text())
        assert stdout_doc["cases"][0]["case"] == "dc_filter@HOM32/basic"
        assert (file_doc["cases"][0]["case"]
                == stdout_doc["cases"][0]["case"])

    def test_profile_cli(self, capsys):
        code = cli.main(["profile", "--kernel", "dc_filter",
                         "--variant", "basic", "--top", "5"])
        assert code == 0
        assert "map_kernel" in capsys.readouterr().out
