"""Run ledger: persistence, filtering, rolling-median gating, CLI."""

import json
import platform

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.perf import ledger
from repro.perf.ledger import (
    ENV_LEDGER,
    LEDGER_SCHEMA,
    append_entry,
    bench_summary,
    compare_to_ledger,
    ledger_path,
    make_entry,
    read_ledger,
    record,
    render_history,
    sparkline,
)

BENCH_ARGS = ["bench", "--cases", "dc_filter@HOM64/basic",
              "--warmup", "0", "--repeat", "1", "--quiet"]


def bench_entry(seconds, case="dc_filter@HOM64/basic",
                hostname=None):
    entry = make_entry("bench", {
        "total_seconds": seconds,
        "cases": {case: seconds},
        "warmup": 0, "repeat": 1, "reducer": "min",
    })
    if hostname is not None:
        entry["hostname"] = hostname
    return entry


class TestLedgerFile:
    def test_round_trip(self, tmp_path):
        path = ledger_path(tmp_path)
        append_entry(make_entry("sweep", {"points": 4}), path)
        append_entry(make_entry("bench", {"total_seconds": 1.0,
                                          "cases": {}}), path)
        entries, skipped = read_ledger(path)
        assert skipped == 0
        assert [e["command"] for e in entries] == ["sweep", "bench"]
        assert all(e["schema"] == LEDGER_SCHEMA for e in entries)
        assert all(e["hostname"] == platform.node()
                   for e in entries)

    def test_malformed_lines_skipped_not_fatal(self, tmp_path):
        path = ledger_path(tmp_path)
        append_entry(make_entry("bench", {"cases": {}}), path)
        with open(path, "a") as fh:
            fh.write("{torn line\n")
            fh.write(json.dumps({"kind": "something-else"}) + "\n")
        entries, skipped = read_ledger(path)
        assert len(entries) == 1
        assert skipped == 2

    def test_filters_and_limit(self, tmp_path):
        path = ledger_path(tmp_path)
        for i in range(5):
            append_entry(make_entry("bench", {"i": i}), path)
        append_entry(make_entry("sweep", {"points": 1}), path)
        bench_only, _ = read_ledger(path, command="bench")
        assert len(bench_only) == 5
        newest, _ = read_ledger(path, command="bench", limit=2)
        assert [e["summary"]["i"] for e in newest] == [3, 4]
        other_host, _ = read_ledger(path, host="not-this-host")
        assert other_host == []

    def test_missing_file_reads_empty(self, tmp_path):
        entries, skipped = read_ledger(tmp_path / "none.jsonl")
        assert entries == [] and skipped == 0

    def test_record_honours_cache_dir_env(self):
        # tests/conftest.py points REPRO_CACHE_DIR at a tmp dir, so
        # record() with no cache_dir lands there — never in $HOME.
        entry = record("bench", {"cases": {}})
        assert entry is not None
        entries, _ = read_ledger()
        assert entries[-1]["summary"] == {"cases": {}}

    def test_record_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(ENV_LEDGER, "0")
        assert record("bench", {"cases": {}}) is None
        entries, _ = read_ledger()
        assert entries == []

    def test_record_swallows_unwritable_dir(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the dir should go")
        assert record("bench", {"cases": {}},
                      cache_dir=blocker / "sub") is None


class TestCompareToLedger:
    def test_median_of_window(self, tmp_path):
        entries = [bench_entry(s) for s in (1.0, 2.0, 3.0, 100.0)]
        current = {"cases": [{"case": "dc_filter@HOM64/basic",
                              "seconds": 2.4}]}
        rows, regressions, used = compare_to_ledger(
            current, entries, window=3, max_regress_pct=25.0)
        assert used == 3
        # Window keeps the newest 3 (2, 3, 100): median 3.0.
        assert rows[0]["baseline_seconds"] == 3.0
        assert regressions == []

    def test_regression_detected(self):
        entries = [bench_entry(1.0) for _ in range(5)]
        current = {"cases": [{"case": "dc_filter@HOM64/basic",
                              "seconds": 2.0}]}
        _, regressions, _ = compare_to_ledger(
            current, entries, max_regress_pct=25.0)
        assert len(regressions) == 1

    def test_empty_ledger_raises(self):
        current = {"cases": []}
        with pytest.raises(ReproError, match="no bench entries"):
            compare_to_ledger(current, [])

    def test_non_bench_entries_ignored(self):
        entries = [make_entry("sweep", {"points": 3})]
        with pytest.raises(ReproError, match="no bench entries"):
            compare_to_ledger({"cases": []}, entries)


class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([1, 2, 3, 8])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([5, 5]) == "▄▄"
        assert sparkline([]) == ""

    def test_history_lists_runs_and_trend(self):
        entries = [bench_entry(s) for s in (0.5, 1.0, 2.0)]
        text = render_history(entries)
        assert "bench: 3 run(s)" in text
        assert "total 2.000s" in text

    def test_history_empty_message(self):
        assert "empty" in render_history([])

    def test_history_reports_skipped(self):
        text = render_history([bench_entry(1.0)], skipped=2)
        assert "2 malformed" in text


class TestCliLedger:
    def test_two_bench_runs_show_in_history(self, capsys):
        assert main(BENCH_ARGS) == 0
        assert main(BENCH_ARGS) == 0
        capsys.readouterr()
        assert main(["history", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        benches = [e for e in payload["entries"]
                   if e["command"] == "bench"]
        assert len(benches) >= 2

    def test_sweep_and_diff_append_entries(self, tmp_path, capsys):
        sweep = ["sweep", "--kernels", "dc_filter", "--configs",
                 "HOM64", "--variants", "basic", "--quiet",
                 "--cache-dir", str(tmp_path)]
        assert main(sweep) == 0
        assert main(["diff", "--kernels", "dc_filter", "--configs",
                     "HOM64", "--variants", "basic", "--quiet",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["history", "--cache-dir", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        commands = [e["command"] for e in payload["entries"]]
        assert "sweep" in commands and "diff" in commands

    def test_history_command_filter(self, capsys):
        assert main(BENCH_ARGS) == 0
        capsys.readouterr()
        assert main(["history", "--command", "sweep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == []

    def test_compare_ledger_gates_injected_regression(self, capsys):
        # Seed the ledger with implausibly fast same-host runs: any
        # real run regresses against their median -> exit 3.
        path = ledger_path()
        for _ in range(5):
            append_entry(bench_entry(1e-6), path)
        assert main(BENCH_ARGS + ["--compare-ledger"]) == 3
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "ledger gate" in out

    def test_compare_ledger_passes_against_itself(self, capsys):
        assert main(BENCH_ARGS) == 0
        # An immediate identical re-run sits at the median (one
        # entry) with the default 25% headroom.
        assert main(BENCH_ARGS + ["--compare-ledger",
                                  "--max-regress", "400"]) == 0

    def test_compare_ledger_ignores_other_hosts(self, capsys):
        path = ledger_path()
        for _ in range(5):
            append_entry(bench_entry(1e-6, hostname="elsewhere"),
                         path)
        assert main(BENCH_ARGS + ["--compare-ledger"]) == 1
        assert "no bench entries" in capsys.readouterr().err

    def test_empty_ledger_gate_is_one_line_error(self, capsys):
        assert main(BENCH_ARGS + ["--compare-ledger"]) == 1
        assert "no bench entries" in capsys.readouterr().err

    def test_max_regress_allowed_with_compare_ledger(self, capsys):
        # PR 8 rejected --max-regress without --compare; the ledger
        # gate is the second legitimate consumer.
        assert main(BENCH_ARGS + ["--max-regress", "10"]) == 1
        assert "--max-regress only applies" in \
            capsys.readouterr().err
