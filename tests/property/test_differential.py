"""Differential property test: the two backends must agree.

For every kernel x configuration in the fast suite, under random
input seeds, the analytic lockstep simulator and the event-driven
cycle-level executor must agree on mapped-success, produce
bit-identical outputs, and report cycle counts within the documented
tolerance (analytic >= measured, gap bounded by the schedule's
trailing idle — see :data:`repro.sim.executor.CYCLE_TOLERANCE_NOTE`
and the measured defaults in :mod:`repro.runtime.diff`).

Mapping is deterministic and seed-independent, so each
(kernel, config) pair maps and assembles once (memoised below) and
Hypothesis spends its examples where the randomness actually is: the
input data both execution engines consume.
"""

import functools

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import VARIANTS, map_kernel
from repro.runtime.diff import DEFAULT_ABS_TOL, DEFAULT_REL_TOL
from repro.sim.cgra import CGRASimulator
from repro.sim.executor import CycleExecutor

#: The fast suite's execution axes: every paper kernel on every
#: latency configuration, under the paper's full flow.
CONFIGS = ("HOM64", "HOM32", "HET1", "HET2")


@functools.lru_cache(maxsize=None)
def prepared(kernel_name, config_name):
    """Map + assemble once per (kernel, config); None if unmappable
    on this configuration (both backends would agree trivially)."""
    kernel = get_kernel(kernel_name)
    options = VARIANTS["full"]()
    mapping = map_kernel(kernel.cdfg, get_config(config_name), options)
    if not mapping.fits:
        return None
    program = assemble(mapping, kernel.cdfg,
                       enforce_fit=options.ecmap)
    return kernel, program


def within_tolerance(analytic, measured):
    return abs(analytic - measured) \
        <= max(DEFAULT_ABS_TOL, DEFAULT_REL_TOL * analytic)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kernel_name=st.sampled_from(PAPER_KERNEL_ORDER),
       config_name=st.sampled_from(CONFIGS),
       seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_backends_agree_on_outputs_and_cycles(kernel_name,
                                              config_name, seed):
    pair = prepared(kernel_name, config_name)
    if pair is None:
        return
    kernel, program = pair
    inputs = kernel.make_inputs(np.random.default_rng(seed))
    lockstep = CGRASimulator(program, kernel.make_memory(inputs)).run()
    measured = CycleExecutor(program, kernel.make_memory(inputs)).run()
    expected = kernel.reference(inputs)
    for region in kernel.output_regions:
        got_a = lockstep.region(kernel.cdfg, region)
        got_b = measured.region(kernel.cdfg, region)
        assert got_a == expected[region], (kernel_name, region)
        assert got_b == expected[region], (kernel_name, region)
    # The analytic count restates the schedule; the measured count
    # can only fall short of it by trailing idle — and by no more
    # than the documented diff tolerance.
    assert measured.cycles <= lockstep.cycles
    assert within_tolerance(lockstep.cycles, measured.cycles), (
        kernel_name, config_name, lockstep.cycles, measured.cycles)


def test_every_fast_suite_pair_is_covered_once():
    """Deterministic sweep of the full kernel x config grid (one
    seed), so coverage does not depend on Hypothesis' sampling."""
    for kernel_name in PAPER_KERNEL_ORDER:
        for config_name in CONFIGS:
            pair = prepared(kernel_name, config_name)
            if pair is None:
                continue
            kernel, program = pair
            inputs = kernel.make_inputs(np.random.default_rng(7))
            lockstep = CGRASimulator(
                program, kernel.make_memory(inputs)).run()
            measured = CycleExecutor(
                program, kernel.make_memory(inputs)).run()
            for region in kernel.output_regions:
                assert measured.region(kernel.cdfg, region) \
                    == lockstep.region(kernel.cdfg, region), \
                    (kernel_name, config_name, region)
            assert measured.cycles <= lockstep.cycles
            assert within_tolerance(lockstep.cycles, measured.cycles)
