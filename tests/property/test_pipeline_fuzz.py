"""End-to-end fuzzing: random programs through the whole pipeline.

Hypothesis generates random straight-line kernels (arithmetic over
random inputs, loads, stores); each is interpreted (golden model),
then mapped -> assembled -> simulated on the CGRA.  Output regions
and every store must agree bit-exactly.  This is the strongest
soundness check in the suite: it exercises scheduling, binding,
routing, pnop folding, operand resolution and the simulator against
each other with no hand-written expectations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.ir.builder import KernelBuilder
from repro.ir.interp import Interpreter
from repro.mapping.flow import FlowOptions, map_kernel
from repro.sim.cgra import CGRASimulator

#: End-to-end fuzzing is the heaviest part of the suite; the fast CI
#: lane (`pytest -m "not slow"`) skips it.
pytestmark = pytest.mark.slow

MEM = 16

binary_ops = st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                              "min", "max"])


@st.composite
def straight_line_program(draw):
    """A random single-block kernel over a small memory region."""
    n_steps = draw(st.integers(min_value=3, max_value=18))
    steps = []
    for _ in range(n_steps):
        kind = draw(st.sampled_from(["op", "op", "op", "load", "store"]))
        if kind == "op":
            steps.append(("op", draw(binary_ops),
                          draw(st.integers(-100, 100))))
        elif kind == "load":
            steps.append(("load", draw(st.integers(0, MEM - 1))))
        else:
            steps.append(("store", draw(st.integers(0, MEM - 1))))
    return steps


def build_kernel(steps):
    k = KernelBuilder("fuzz")
    data = k.array_input("data", MEM)
    out = k.array_output("out", 1)
    values = [k.const(1)]
    for step in steps:
        if step[0] == "op":
            _, name, constant = step
            method = {
                "add": lambda a, b: a + b,
                "sub": lambda a, b: a - b,
                "mul": lambda a, b: a * b,
                "and": lambda a, b: a & b,
                "or": lambda a, b: a | b,
                "xor": lambda a, b: a ^ b,
                "min": None,
                "max": None,
            }[name]
            left = values[len(values) // 2]
            if method is None:
                from repro.ir.opcodes import Opcode
                opcode = Opcode.MIN if name == "min" else Opcode.MAX
                values.append(k.op(opcode, left, k.const(constant)))
            else:
                values.append(method(left, k.const(constant)))
        elif step[0] == "load":
            values.append(k.load(data.at(step[1])))
        else:
            k.store(data.at(step[1]), values[-1])
    k.store(out.at(0), values[-1])
    return k.finish()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=straight_line_program(), seed=st.integers(0, 2**16))
def test_random_program_cgra_matches_interpreter(steps, seed):
    cdfg = build_kernel(steps)
    rng = np.random.default_rng(seed)
    memory = [int(v) for v in rng.integers(-1000, 1000, cdfg.memory_size)]

    golden = Interpreter(cdfg).run(memory)

    mapping = map_kernel(cdfg, get_config("HOM64"), FlowOptions.basic())
    program = assemble(mapping, cdfg, enforce_fit=True)
    run = CGRASimulator(program, memory).run()

    assert run.memory.snapshot() == golden.memory


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=straight_line_program(), seed=st.integers(0, 2**16))
def test_random_program_aware_flow_on_het2(steps, seed):
    cdfg = build_kernel(steps)
    rng = np.random.default_rng(seed)
    memory = [int(v) for v in rng.integers(-1000, 1000, cdfg.memory_size)]

    golden = Interpreter(cdfg).run(memory)

    mapping = map_kernel(cdfg, get_config("HET2"), FlowOptions.aware())
    program = assemble(mapping, cdfg)
    run = CGRASimulator(program, memory).run()

    assert run.memory.snapshot() == golden.memory
