"""Property-based tests on core data structures and invariants."""

from hypothesis import given, strategies as st

from repro.arch.configs import get_config
from repro.arch.interconnect import TorusInterconnect
from repro.ir import opcodes
from repro.ir.opcodes import Opcode
from repro.mapping.state import (
    CommittedState,
    PartialMapping,
    pnop_blocks,
    pnop_upper_bound,
)

cycles_sets = st.sets(st.integers(min_value=0, max_value=63),
                      max_size=20)


class TestPnopProperties:
    @given(cycles_sets)
    def test_upper_bound_dominates_exact(self, cycles):
        if not cycles:
            return
        assert (pnop_upper_bound(len(cycles), max(cycles))
                >= pnop_blocks(cycles))

    @given(cycles_sets)
    def test_incremental_matches_reference(self, cycles):
        cgra = get_config("HOM64")
        pm = PartialMapping(cgra, CommittedState(cgra), 64)
        for index, cycle in enumerate(sorted(cycles, key=hash)):
            pm.occupy(0, cycle, ("op", index))
        assert pm.exact_pnops(0) == pnop_blocks(cycles)

    @given(cycles_sets, st.integers(min_value=1, max_value=5))
    def test_incremental_survives_stretch(self, cycles, delta):
        cgra = get_config("HOM64")
        pm = PartialMapping(cgra, CommittedState(cgra), 64)
        for index, cycle in enumerate(sorted(cycles)):
            pm.occupy(0, cycle, ("op", index))
        pm.stretch(delta)
        shifted = {cycle + delta for cycle in cycles}
        assert pm.exact_pnops(0) == pnop_blocks(shifted)

    @given(cycles_sets)
    def test_compress_never_increases_words(self, cycles):
        if not cycles:
            return
        cgra = get_config("HOM64")
        pm = PartialMapping(cgra, CommittedState(cgra), 64)
        for index, cycle in enumerate(sorted(cycles)):
            pm.occupy(0, cycle, ("op", index))
        before = pm.tile_busy_count(0) + pm.exact_pnops(0)
        pm.compress()
        after = pm.tile_busy_count(0) + pm.exact_pnops(0)
        assert after <= before
        assert pm.exact_pnops(0) == pnop_blocks(pm.tile_cycles[0].keys())


class TestTorusProperties:
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=6),
           st.data())
    def test_distance_matches_bfs(self, rows, cols, data):
        torus = TorusInterconnect(rows, cols)
        a = data.draw(st.integers(0, rows * cols - 1))
        b = data.draw(st.integers(0, rows * cols - 1))
        # BFS reference.
        frontier = {a}
        seen = {a}
        hops = 0
        while b not in seen:
            frontier = {n for tile in frontier
                        for n in torus.neighbors(tile)} - seen
            seen |= frontier
            hops += 1
        assert torus.distance(a, b) == hops

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=6))
    def test_neighbor_symmetry(self, rows, cols):
        torus = TorusInterconnect(rows, cols)
        for tile in range(rows * cols):
            for neighbor in torus.neighbors(tile):
                assert tile in torus.neighbors(neighbor)


class TestArithmeticProperties:
    @given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=1,
                    max_size=40))
    def test_wrap32_sum_is_associative(self, values):
        # Two's complement modular addition is associative, so the
        # tree reduction must agree with the sequential sum.
        sequential = 0
        for value in values:
            sequential = opcodes.wrap32(sequential + value)
        # Emulate tree_sum's pairing on plain ints.
        level = [opcodes.wrap32(v) for v in values]
        while len(level) > 1:
            paired = [opcodes.wrap32(level[i] + level[i + 1])
                      for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                paired.append(level[-1])
            level = paired
        assert level[0] == opcodes.wrap32(sequential)

    @given(st.integers(-2**40, 2**40), st.integers(-2**40, 2**40))
    def test_evaluate_always_in_range(self, a, b):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                       Opcode.OR, Opcode.XOR, Opcode.MIN, Opcode.MAX):
            result = opcodes.evaluate(
                opcode, [opcodes.wrap32(a), opcodes.wrap32(b)])
            assert -2**31 <= result < 2**31

    @given(st.integers(-2**31, 2**31 - 1), st.integers(0, 63))
    def test_shift_semantics(self, a, amount):
        left = opcodes.evaluate(Opcode.SLL, [a, amount])
        assert -2**31 <= left < 2**31
        sra = opcodes.evaluate(Opcode.SRA, [a, amount])
        assert sra == a >> (amount & 31)
