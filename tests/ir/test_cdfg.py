"""Unit tests for CDFG structure, terminators and validation."""

import pytest

from repro.errors import IRError, ValidationError
from repro.ir.cdfg import CDFG, Branch, Exit, Jump
from repro.ir.opcodes import Opcode
from repro.ir.validate import validate_cdfg


def linear_cdfg():
    cdfg = CDFG("linear")
    a = cdfg.add_block("a")
    b = cdfg.add_block("b")
    a.set_terminator(Jump("b"))
    b.set_terminator(Exit())
    return cdfg


class TestStructure:
    def test_entry_is_first_block(self):
        cdfg = linear_cdfg()
        assert cdfg.entry == "a"

    def test_duplicate_block_rejected(self):
        cdfg = CDFG("d")
        cdfg.add_block("a")
        with pytest.raises(IRError):
            cdfg.add_block("a")

    def test_successors_predecessors(self):
        cdfg = linear_cdfg()
        assert cdfg.successors("a") == ["b"]
        assert cdfg.predecessors("b") == ["a"]
        assert cdfg.successors("b") == []

    def test_unknown_block_lookup(self):
        cdfg = linear_cdfg()
        with pytest.raises(IRError):
            cdfg.block("zzz")

    def test_double_terminator_rejected(self):
        cdfg = CDFG("t")
        a = cdfg.add_block("a")
        a.set_terminator(Exit())
        with pytest.raises(IRError):
            a.set_terminator(Exit())

    def test_branch_emits_br_op(self):
        cdfg = CDFG("br")
        a = cdfg.add_block("a")
        cond = a.dfg.add_op(Opcode.LT, [a.dfg.new_const(0),
                                        a.dfg.new_const(1)])
        b = cdfg.add_block("b")
        c = cdfg.add_block("c")
        a.set_terminator(Branch(cond, "b", "c"))
        assert a.dfg.ops[-1].opcode is Opcode.BR
        b.set_terminator(Exit())
        c.set_terminator(Exit())
        assert cdfg.validate()

    def test_branch_condition_must_be_data_node(self):
        with pytest.raises(IRError):
            Branch("not-a-node", "b", "c")


class TestTraversalOrder:
    def test_reverse_post_order_diamond(self):
        cdfg = CDFG("dia")
        a = cdfg.add_block("a")
        cond = a.dfg.add_op(Opcode.LT, [a.dfg.new_const(0),
                                        a.dfg.new_const(1)])
        for name in ("left", "right", "join"):
            cdfg.add_block(name)
        a.set_terminator(Branch(cond, "left", "right"))
        cdfg.block("left").set_terminator(Jump("join"))
        cdfg.block("right").set_terminator(Jump("join"))
        cdfg.block("join").set_terminator(Exit())
        order = cdfg.reverse_post_order()
        assert order[0] == "a"
        assert order[-1] == "join"
        assert set(order) == {"a", "left", "right", "join"}


class TestValidation:
    def test_missing_terminator(self):
        cdfg = CDFG("v")
        cdfg.add_block("a")
        with pytest.raises(ValidationError):
            cdfg.validate()

    def test_dangling_target(self):
        cdfg = CDFG("v")
        a = cdfg.add_block("a")
        a.set_terminator(Jump("ghost"))
        with pytest.raises(ValidationError):
            cdfg.validate()

    def test_unreachable_block(self):
        cdfg = linear_cdfg()
        orphan = cdfg.add_block("orphan")
        orphan.set_terminator(Exit())
        with pytest.raises(ValidationError):
            cdfg.validate()

    def test_undeclared_symbol_read(self):
        cdfg = CDFG("v")
        a = cdfg.add_block("a")
        a.dfg.new_symbol_input("ghost")
        a.set_terminator(Exit())
        with pytest.raises(ValidationError):
            cdfg.validate()

    def test_unused_symbol_flagged_by_validate_cdfg(self):
        cdfg = linear_cdfg()
        cdfg.declare_symbol("dead", 0)
        cdfg.validate()  # structural validation passes
        with pytest.raises(ValidationError):
            validate_cdfg(cdfg)  # strict validation rejects

    def test_empty_cdfg_rejected(self):
        with pytest.raises(ValidationError):
            CDFG("empty").validate()

    def test_duplicate_region_rejected(self):
        cdfg = linear_cdfg()
        cdfg.declare_region("x", 0, 4, "input")
        with pytest.raises(IRError):
            cdfg.declare_region("x", 4, 4, "input")

    def test_memory_size_tracks_regions(self):
        cdfg = linear_cdfg()
        cdfg.declare_region("x", 0, 4, "input")
        cdfg.declare_region("y", 10, 6, "output")
        assert cdfg.memory_size == 16
