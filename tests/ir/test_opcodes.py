"""Unit tests for the opcode set and its fixed-point semantics."""

import pytest

from repro.errors import IRError
from repro.ir import opcodes
from repro.ir.opcodes import Opcode


class TestArity:
    def test_binary_ops(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                   Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
                   Opcode.SRA, Opcode.MIN, Opcode.MAX, Opcode.EQ,
                   Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE,
                   Opcode.STORE):
            assert opcodes.arity(op) == 2

    def test_unary_ops(self):
        for op in (Opcode.NEG, Opcode.NOT, Opcode.ABS, Opcode.LOAD,
                   Opcode.MOV, Opcode.BR):
            assert opcodes.arity(op) == 1

    def test_select_is_ternary(self):
        assert opcodes.arity(Opcode.SELECT) == 3

    def test_every_opcode_has_arity(self):
        for op in Opcode:
            assert opcodes.arity(op) >= 1


class TestProperties:
    def test_no_result_ops(self):
        assert not opcodes.has_result(Opcode.STORE)
        assert not opcodes.has_result(Opcode.BR)
        assert opcodes.has_result(Opcode.ADD)
        assert opcodes.has_result(Opcode.LOAD)
        assert opcodes.has_result(Opcode.MOV)

    def test_memory_ops(self):
        assert opcodes.is_memory(Opcode.LOAD)
        assert opcodes.is_memory(Opcode.STORE)
        assert not opcodes.is_memory(Opcode.ADD)
        assert not opcodes.is_memory(Opcode.MOV)

    def test_commutativity(self):
        assert opcodes.is_commutative(Opcode.ADD)
        assert opcodes.is_commutative(Opcode.MUL)
        assert not opcodes.is_commutative(Opcode.SUB)
        assert not opcodes.is_commutative(Opcode.SLL)
        assert not opcodes.is_commutative(Opcode.LT)

    def test_cpu_costs(self):
        assert opcodes.cpu_cycles(Opcode.ADD) == 1
        assert opcodes.cpu_cycles(Opcode.MUL) == 3
        assert opcodes.cpu_cycles(Opcode.LOAD) == 2
        assert opcodes.cpu_cycles(Opcode.STORE) == 1
        assert opcodes.cpu_cycles(Opcode.BR) == 3


class TestEvaluate:
    def test_add_wraps(self):
        assert opcodes.evaluate(Opcode.ADD, [0x7FFFFFFF, 1]) == -0x80000000

    def test_sub(self):
        assert opcodes.evaluate(Opcode.SUB, [3, 5]) == -2

    def test_mul_wraps(self):
        assert opcodes.evaluate(Opcode.MUL, [1 << 16, 1 << 16]) == 0

    def test_logic(self):
        assert opcodes.evaluate(Opcode.AND, [0b1100, 0b1010]) == 0b1000
        assert opcodes.evaluate(Opcode.OR, [0b1100, 0b1010]) == 0b1110
        assert opcodes.evaluate(Opcode.XOR, [0b1100, 0b1010]) == 0b0110

    def test_shifts(self):
        assert opcodes.evaluate(Opcode.SLL, [1, 4]) == 16
        assert opcodes.evaluate(Opcode.SRA, [-8, 1]) == -4
        assert opcodes.evaluate(Opcode.SRL, [-8, 1]) == 0x7FFFFFFC

    def test_shift_amount_masked_to_5_bits(self):
        assert opcodes.evaluate(Opcode.SLL, [1, 33]) == 2

    def test_minmax(self):
        assert opcodes.evaluate(Opcode.MIN, [-3, 7]) == -3
        assert opcodes.evaluate(Opcode.MAX, [-3, 7]) == 7

    def test_comparisons(self):
        assert opcodes.evaluate(Opcode.LT, [1, 2]) == 1
        assert opcodes.evaluate(Opcode.GE, [1, 2]) == 0
        assert opcodes.evaluate(Opcode.EQ, [5, 5]) == 1
        assert opcodes.evaluate(Opcode.NE, [5, 5]) == 0
        assert opcodes.evaluate(Opcode.LE, [2, 2]) == 1
        assert opcodes.evaluate(Opcode.GT, [3, 2]) == 1

    def test_unary(self):
        assert opcodes.evaluate(Opcode.NEG, [5]) == -5
        assert opcodes.evaluate(Opcode.NOT, [0]) == -1
        assert opcodes.evaluate(Opcode.ABS, [-9]) == 9
        assert opcodes.evaluate(Opcode.MOV, [42]) == 42

    def test_select(self):
        assert opcodes.evaluate(Opcode.SELECT, [1, 10, 20]) == 10
        assert opcodes.evaluate(Opcode.SELECT, [0, 10, 20]) == 20
        assert opcodes.evaluate(Opcode.SELECT, [-1, 10, 20]) == 10

    def test_memory_ops_rejected(self):
        with pytest.raises(IRError):
            opcodes.evaluate(Opcode.LOAD, [0])
        with pytest.raises(IRError):
            opcodes.evaluate(Opcode.STORE, [0, 1])
        with pytest.raises(IRError):
            opcodes.evaluate(Opcode.BR, [1])

    def test_wrong_arity_rejected(self):
        with pytest.raises(IRError):
            opcodes.evaluate(Opcode.ADD, [1])

    def test_wrap32_helper(self):
        assert opcodes.wrap32(0x80000000) == -0x80000000
        assert opcodes.wrap32(-0x80000001) == 0x7FFFFFFF
        assert opcodes.wrap32(0) == 0
        assert opcodes.wrap32(0xFFFFFFFF) == -1
