"""Unit tests for the per-block data-flow graph structure."""

import pytest

from repro.errors import IRError
from repro.ir.dfg import DFG
from repro.ir.opcodes import Opcode


@pytest.fixture
def dfg():
    return DFG("bb")


class TestConstruction:
    def test_const_dedup(self, dfg):
        a = dfg.new_const(7)
        b = dfg.new_const(7)
        c = dfg.new_const(8)
        assert a is b
        assert a is not c

    def test_const_wraps_to_32_bits(self, dfg):
        node = dfg.new_const(0xFFFFFFFF)
        assert node.value == -1

    def test_symbol_input_unique(self, dfg):
        a = dfg.new_symbol_input("i")
        b = dfg.new_symbol_input("i")
        assert a is b
        assert a.is_symbol

    def test_add_op_produces_result(self, dfg):
        a = dfg.new_const(1)
        b = dfg.new_const(2)
        result = dfg.add_op(Opcode.ADD, [a, b])
        assert result is not None
        assert result.producer is dfg.ops[0]

    def test_store_has_no_result(self, dfg):
        addr = dfg.new_const(0)
        val = dfg.new_const(1)
        assert dfg.add_op(Opcode.STORE, [addr, val]) is None

    def test_wrong_arity_rejected(self, dfg):
        a = dfg.new_const(1)
        with pytest.raises(IRError):
            dfg.add_op(Opcode.ADD, [a])

    def test_foreign_operand_rejected(self, dfg):
        other = DFG("other")
        foreign = other.new_const(1)
        # A fresh-uid foreign node is caught by the uid guard.
        local = dfg.new_const(1)
        assert foreign is not local

    def test_non_datanode_operand_rejected(self, dfg):
        with pytest.raises(IRError):
            dfg.add_op(Opcode.NEG, [42])


class TestQueries:
    def test_consumers_and_fanout(self, dfg):
        a = dfg.new_const(1)
        b = dfg.new_const(2)
        s = dfg.add_op(Opcode.ADD, [a, b])
        dfg.add_op(Opcode.MUL, [s, s])
        dfg.add_op(Opcode.NEG, [s])
        assert len(dfg.consumers(s)) == 2
        assert dfg.consumer_count(s) == 3  # MUL uses it twice

    def test_predecessors_successors(self, dfg):
        a = dfg.new_const(1)
        x = dfg.add_op(Opcode.NEG, [a])
        y = dfg.add_op(Opcode.NEG, [x])
        op_x, op_y = dfg.ops
        assert dfg.predecessors(op_y) == [op_x]
        assert dfg.successors(op_x) == [op_y]
        assert dfg.predecessors(op_x) == []
        assert dfg.successors(op_y) == []

    def test_symbol_output(self, dfg):
        v = dfg.add_op(Opcode.ADD, [dfg.new_const(1), dfg.new_const(2)])
        dfg.set_symbol_output("acc", v)
        assert dfg.symbol_outputs["acc"] is v

    def test_validate_passes(self, dfg):
        a = dfg.new_symbol_input("i")
        v = dfg.add_op(Opcode.ADD, [a, dfg.new_const(1)])
        dfg.set_symbol_output("i", v)
        assert dfg.validate()
