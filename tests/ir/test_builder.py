"""Unit tests for the kernel-building DSL."""

import pytest

from repro.errors import IRError
from repro.ir.builder import KernelBuilder
from repro.ir.cdfg import Branch
from repro.ir.interp import Interpreter


class TestStraightLine:
    def test_single_block_kernel(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        k.store(out.at(0), k.const(2) + k.const(3))
        cdfg = k.finish()
        assert len(cdfg.blocks) == 1
        result = Interpreter(cdfg).run()
        assert result.region(cdfg, "out") == [5]

    def test_operator_chain(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        v = (k.const(10) - 3) * 2
        k.store(out.at(0), v)
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [14]

    def test_reverse_operators(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 2)
        k.store(out.at(0), 10 - k.const(3))
        k.store(out.at(1), 2 + k.const(5))
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [7, 7]

    def test_select(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        k.store(out.at(0), k.select(k.const(1), k.const(11), k.const(22)))
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [11]

    def test_finish_twice_rejected(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        k.store(out.at(0), k.const(0))
        k.finish()
        with pytest.raises(IRError):
            k.finish()


class TestMemory:
    def test_regions_are_disjoint(self):
        k = KernelBuilder("t")
        a = k.array_input("a", 10)
        b = k.array_input("b", 20)
        c = k.array_output("c", 5)
        assert a.base == 0
        assert b.base == 10
        assert c.base == 30
        k.store(c.at(0), k.const(0))
        cdfg = k.finish()
        assert cdfg.memory_size == 35

    def test_load_store_roundtrip(self):
        k = KernelBuilder("t")
        a = k.array_input("a", 4)
        out = k.array_output("out", 4)
        for i in range(4):
            k.store(out.at(i), k.load(a.at(i)) + 100)
        cdfg = k.finish()
        image = [0] * cdfg.memory_size
        image[0:4] = [1, 2, 3, 4]
        result = Interpreter(cdfg).run(image)
        assert result.region(cdfg, "out") == [101, 102, 103, 104]


class TestLoops:
    def test_simple_loop_structure(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 8)
        with k.loop("i", 0, 8) as i:
            k.store(out.at(i), i * 2)
        cdfg = k.finish()
        # entry + header + body + exit
        assert len(cdfg.blocks) == 4
        header = [b for b in cdfg.blocks.values()
                  if isinstance(b.terminator, Branch)]
        assert len(header) == 1

    def test_loop_executes(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 8)
        with k.loop("i", 0, 8) as i:
            k.store(out.at(i), i * 2)
        cdfg = k.finish()
        result = Interpreter(cdfg).run()
        assert result.region(cdfg, "out") == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_nested_loops(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 12)
        three = k.symbol_var("cols", 3)
        with k.loop("i", 0, 4) as i:
            with k.loop("j", 0, 3) as j:
                # out[i*3+j] = i*10 + j; i crosses a block boundary so it
                # must be re-read via the symbol inside the inner body.
                pass
        cdfg = k.finish()
        # Loop variables live across blocks as symbols.
        assert "i" in cdfg.symbols
        assert "j" in cdfg.symbols

    def test_nested_loop_computation(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 12)
        i_sym = None
        with k.loop("i", 0, 4) as i:
            with k.loop("j", 0, 3) as j:
                # Inside the inner body, re-read i through the builder.
                iv = k.get_symbol("i")
                k.store(out.at(iv * 3 + j), iv * 10 + j)
        cdfg = k.finish()
        result = Interpreter(cdfg).run()
        expected = [i * 10 + j for i in range(4) for j in range(3)]
        assert result.region(cdfg, "out") == expected

    def test_loop_carried_accumulator(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 0, 10) as i:
            k.set(acc, k.get(acc) + i)
        k.store(out.at(0), k.get(acc))
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [45]

    def test_downward_loop(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 5, 0, step=-1) as i:
            k.set(acc, k.get(acc) + i)
        k.store(out.at(0), k.get(acc))
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [15]

    def test_zero_step_rejected(self):
        k = KernelBuilder("t")
        with pytest.raises(IRError):
            k.loop("i", 0, 8, step=0)

    def test_cross_block_val_rejected(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        stale = k.const(5)
        with k.loop("i", 0, 3):
            with pytest.raises(IRError):
                k.store(out.at(0), stale + 1)
            k.store(out.at(0), k.const(1))

    def test_symbolic_bound(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        n = k.symbol_var("n", 6)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 0, n) as i:
            k.set(acc, k.get(acc) + 1)
        k.store(out.at(0), k.get(acc))
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [6]


class TestSymbols:
    def test_set_then_get_same_block(self):
        k = KernelBuilder("t")
        out = k.array_output("out", 1)
        s = k.symbol_var("s", 0)
        k.set(s, 41)
        k.store(out.at(0), k.get(s) + 1)
        cdfg = k.finish()
        assert Interpreter(cdfg).run().region(cdfg, "out") == [42]

    def test_duplicate_symbol_rejected(self):
        k = KernelBuilder("t")
        k.symbol_var("s", 0)
        with pytest.raises(IRError):
            k.symbol_var("s", 1)

    def test_get_requires_symbolvar(self):
        k = KernelBuilder("t")
        with pytest.raises(IRError):
            k.get("not_a_symbol")
