"""Interpreter tests: semantics, statistics, failure modes."""

import pytest

from repro.errors import SimulationError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import Interpreter
from repro.ir.opcodes import Opcode


class TestExecution:
    def test_branch_both_ways(self):
        k = KernelBuilder("b")
        out = k.array_output("out", 2)
        flag = k.symbol_var("flag", 1)
        taken = k.declare_block("taken")
        skipped = k.declare_block("skipped")
        done = k.declare_block("done")
        k.branch(k.get(flag), taken, skipped)
        k.emit_in(taken)
        k.store(out.at(0), k.const(111))
        k.goto(done)
        k.emit_in(skipped)
        k.store(out.at(0), k.const(222))
        k.goto(done)
        k.emit_in(done)
        k.store(out.at(1), k.const(9))
        cdfg = k.finish()
        result = Interpreter(cdfg).run()
        assert result.region(cdfg, "out") == [111, 9]

    def test_op_counts_are_dynamic(self):
        k = KernelBuilder("c")
        out = k.array_output("out", 1)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 0, 5) as i:
            k.set(acc, k.get(acc) + i)
        k.store(out.at(0), k.get(acc))
        cdfg = k.finish()
        result = Interpreter(cdfg).run()
        # The body ADD runs 5 times (plus latch and header work).
        assert result.op_counts[Opcode.BR] == 6  # 5 taken + 1 exit
        assert result.block_counts[cdfg.entry] == 1

    def test_memory_image_not_mutated(self):
        k = KernelBuilder("m")
        data = k.array_input("data", 2)
        out = k.array_output("out", 1)
        k.store(out.at(0), k.load(data.at(0)))
        cdfg = k.finish()
        image = [7, 8, 0]
        Interpreter(cdfg).run(image)
        assert image == [7, 8, 0]

    def test_region_view(self):
        k = KernelBuilder("r")
        out = k.array_output("out", 3)
        for i in range(3):
            k.store(out.at(i), k.const(i * 10))
        cdfg = k.finish()
        result = Interpreter(cdfg).run()
        assert result.region(cdfg, "out") == [0, 10, 20]
        assert result.dynamic_ops > 0


class TestFailureModes:
    def test_out_of_bounds_load(self):
        k = KernelBuilder("oob")
        data = k.array_input("data", 2)
        out = k.array_output("out", 1)
        k.store(out.at(0), k.load(data.at(0) + 100))
        cdfg = k.finish()
        with pytest.raises(SimulationError):
            Interpreter(cdfg).run()

    def test_short_memory_image_rejected(self):
        k = KernelBuilder("short")
        data = k.array_input("data", 8)
        out = k.array_output("out", 1)
        k.store(out.at(0), k.load(data.at(0)))
        cdfg = k.finish()
        with pytest.raises(SimulationError):
            Interpreter(cdfg).run([0, 0])

    def test_runaway_loop_guard(self):
        k = KernelBuilder("run")
        out = k.array_output("out", 1)
        spin = k.symbol_var("spin", 1)
        head = k.declare_block("head")
        tail = k.declare_block("tail")
        k.goto(head)
        k.emit_in(head)
        # Condition never becomes false.
        k.branch(k.get(spin), head, tail)
        k.emit_in(tail)
        k.store(out.at(0), k.const(1))
        cdfg = k.finish()
        with pytest.raises(SimulationError):
            Interpreter(cdfg, max_block_executions=100).run()
