"""Unit tests for the DFG/CDFG analyses feeding the mapper."""

import pytest

from repro.errors import IRError
from repro.ir import analysis
from repro.ir.builder import KernelBuilder
from repro.ir.dfg import DFG
from repro.ir.opcodes import Opcode


def diamond_dfg():
    """a -> (b, c) -> d: classic diamond."""
    dfg = DFG("diamond")
    one = dfg.new_const(1)
    a = dfg.add_op(Opcode.ADD, [one, one])
    b = dfg.add_op(Opcode.NEG, [a])
    c = dfg.add_op(Opcode.NOT, [a])
    dfg.add_op(Opcode.ADD, [b, c])
    return dfg


class TestLevels:
    def test_asap_diamond(self):
        dfg = diamond_dfg()
        asap = analysis.asap_levels(dfg)
        levels = [asap[op.uid] for op in dfg.ops]
        assert levels == [0, 1, 1, 2]

    def test_alap_diamond(self):
        dfg = diamond_dfg()
        alap = analysis.alap_levels(dfg)
        levels = [alap[op.uid] for op in dfg.ops]
        assert levels == [0, 1, 1, 2]

    def test_mobility_zero_on_critical_path(self):
        dfg = diamond_dfg()
        mobility = analysis.mobility(dfg)
        assert all(value == 0 for value in mobility.values())

    def test_mobility_with_slack(self):
        dfg = DFG("slack")
        one = dfg.new_const(1)
        chain = one
        for _ in range(3):
            chain = dfg.add_op(Opcode.ADD, [chain, one])
        side = dfg.add_op(Opcode.NEG, [one])
        dfg.add_op(Opcode.ADD, [chain, side])
        mobility = analysis.mobility(dfg)
        side_op = dfg.ops[3]
        assert mobility[side_op.uid] > 0

    def test_alap_with_extended_depth(self):
        dfg = diamond_dfg()
        alap = analysis.alap_levels(dfg, depth=5)
        assert alap[dfg.ops[-1].uid] == 4

    def test_alap_below_critical_path_rejected(self):
        dfg = diamond_dfg()
        with pytest.raises(IRError):
            analysis.alap_levels(dfg, depth=1)

    def test_critical_path_empty_dfg(self):
        assert analysis.critical_path_length(DFG("empty")) == 1

    def test_memory_order_extends_critical_path(self):
        dfg = DFG("mem")
        addr = dfg.new_const(0)
        dfg.add_op(Opcode.STORE, [addr, dfg.new_const(1)], region="x")
        dfg.add_op(Opcode.LOAD, [addr], region="x")
        # The load must come after the store: depth 2, not 1.
        assert analysis.critical_path_length(dfg) == 2


class TestFanout:
    def test_fanout_counts_operand_slots(self):
        dfg = DFG("f")
        one = dfg.new_const(2)
        a = dfg.add_op(Opcode.ADD, [one, one])
        dfg.add_op(Opcode.MUL, [a, a])
        fan = analysis.fanouts(dfg)
        assert fan[dfg.ops[0].uid] == 2
        assert fan[dfg.ops[1].uid] == 0

    def test_priority_ordering(self):
        dfg = diamond_dfg()
        priority = analysis.backward_priority(dfg)
        assert len(priority) == 4
        # Priorities are orderable tuples.
        assert sorted(priority.values())


class TestBlockWeights:
    def _kernel(self):
        k = KernelBuilder("w")
        out = k.array_output("out", 4)
        acc = k.symbol_var("acc", 0)
        with k.loop("i", 0, 4) as i:
            k.set(acc, k.get(acc) + i + i)
        k.store(out.at(0), k.get(acc))
        return k.finish()

    def test_weight_counts_symbols_and_fanouts(self):
        cdfg = self._kernel()
        weights = analysis.cdfg_block_weights(cdfg)
        body = [n for n in weights if "body" in n][0]
        # Body reads acc (fanout 1) and i (fanout 3: two adds plus the
        # latch increment); writes both: n(s)=2 + fanouts 4 -> 6.
        assert weights[body] == 6
        # The body is the heaviest block — weighted traversal maps it
        # first, exactly the Fig 5 mechanism.
        assert weights[body] == max(weights.values())

    def test_symbols_present_includes_writes(self):
        cdfg = self._kernel()
        entry = cdfg.blocks["entry"]
        # Entry initialises the loop variable (write-only).
        assert "i" in analysis.symbols_present(entry)

    def test_weight_zero_without_symbols(self):
        k = KernelBuilder("plain")
        out = k.array_output("out", 1)
        k.store(out.at(0), k.const(1) + 2)
        cdfg = k.finish()
        assert analysis.block_weight(cdfg.blocks["entry"]) == 0

    def test_symbol_fanout_of_unread_symbol(self):
        cdfg = self._kernel()
        entry = cdfg.blocks["entry"]
        assert analysis.symbol_fanout(entry, "i") == 0
