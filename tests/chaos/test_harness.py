"""The three-phase chaos harness: faulted runs must equal clean runs.

One small real run (two specs, real workers, real injected crashes)
proves the whole loop: plan parsing, injection, containment, warm
cache corruption, and the signature comparison that turns it all
into a verdict.
"""

import pytest

from repro.chaos.harness import (
    CHAOS_SCHEMA,
    DEFAULT_PLAN,
    render_report,
    run_chaos,
)
from repro.errors import ReproError
from repro.runtime.sweep import PointSpec

SPECS = [
    PointSpec("dc_filter", "HOM64", "basic"),
    PointSpec("dc_filter", "HET1", "basic"),
]


class TestRunChaos:
    def test_bad_plan_is_rejected_before_any_compute(self, tmp_path):
        with pytest.raises(ReproError, match="unknown fault kind"):
            run_chaos(SPECS, faults="disk_melt:p=1",
                      base_dir=tmp_path)

    def test_empty_plan_is_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="empty fault plan"):
            run_chaos(SPECS, faults="seed=3", base_dir=tmp_path)

    def test_crash_and_corrupt_run_heals_to_the_clean_answer(
            self, tmp_path):
        report = run_chaos(
            SPECS, faults="worker_crash:p=1,attempts=1;"
                          "cache_corrupt:p=1",
            workers=2, point_timeout=30.0, base_dir=tmp_path)
        assert report["ok"], render_report(report)
        assert report["schema"] == CHAOS_SCHEMA
        assert report["points"] == len(SPECS)
        verdict = report["verdict"]
        assert verdict["mismatched"] == []
        assert verdict["lost"] == []
        assert verdict["quarantined"] == []
        phases = report["phases"]
        # The lane must prove faults actually fired: cold crashes
        # restart the pool, warm reads trip the corrupt-entry path.
        assert phases["clean"]["restarts"] == 0
        assert phases["fault_cold"]["restarts"] >= 1
        assert phases["fault_cold"]["retries"] >= len(SPECS)
        assert phases["fault_warm"]["corrupt_entries"] >= 1
        assert phases["fault_warm"]["cache_hits"] < len(SPECS)
        # Single-worker requests are bumped: the injected kinds only
        # fire inside pool children.
        assert report["workers"] >= 2
        text = render_report(report)
        assert "verdict: OK" in text

    def test_default_plan_parses(self):
        from repro.chaos.faults import parse_fault_plan

        plan = parse_fault_plan(DEFAULT_PLAN)
        assert plan.clause("worker_crash").attempts == 1
        assert plan.clause("cache_corrupt") is not None
