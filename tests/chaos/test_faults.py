"""Unit tests for the fault-plan grammar and decision function.

Everything here is pure: no processes are harmed.  The decision
function is hash-based, so the properties under test are exactness
(p=0 never, p=1 always), determinism (same plan, same key, same
answer), and independence (different keys / attempts / seeds re-roll).
"""

import pytest

from repro.chaos import (
    FaultPlan,
    active_plan,
    maybe_corrupt_cache_entry,
    parse_fault_plan,
)
from repro.chaos.faults import (
    DEFAULT_HANG_SECONDS,
    ENV_FAULT,
    FAULT_KINDS,
)
from repro.errors import ReproError


class TestParse:
    def test_full_plan_round_trips_through_describe(self):
        text = ("worker_crash:p=0.05,attempts=2;"
                "point_hang:p=0.01,seconds=12;"
                "cache_corrupt:p=0.02;http_cut:p=0.5;seed=7")
        plan = parse_fault_plan(text)
        assert plan.seed == 7
        assert set(plan.clauses) == set(FAULT_KINDS)
        assert parse_fault_plan(plan.describe()).describe() \
            == plan.describe()

    def test_empty_text_is_no_plan(self):
        assert parse_fault_plan("") is None
        assert parse_fault_plan("seed=3") is None

    def test_defaults(self):
        clause = parse_fault_plan("point_hang:p=1").clause("point_hang")
        assert clause.attempts is None
        assert clause.seconds == DEFAULT_HANG_SECONDS

    @pytest.mark.parametrize("text", [
        "disk_melt:p=1",             # unknown kind
        "worker_crash",              # no probability
        "worker_crash:p=nope",       # non-numeric p
        "worker_crash:p=1.5",        # p outside [0, 1]
        "worker_crash:p=1,when=now", # unknown parameter
        "seed=later",                # non-integer seed
    ])
    def test_bad_plans_are_repro_errors(self, text):
        with pytest.raises(ReproError):
            parse_fault_plan(text)


class TestShould:
    def test_p_one_always_and_p_zero_never(self):
        plan = parse_fault_plan("worker_crash:p=1;point_hang:p=0")
        for key in ("a", "b", "c"):
            assert plan.should("worker_crash", key)
            assert not plan.should("point_hang", key)

    def test_unarmed_kind_never_fires(self):
        plan = parse_fault_plan("worker_crash:p=1")
        assert not plan.should("cache_corrupt", "k")

    def test_decision_is_deterministic_per_key_and_attempt(self):
        plan = parse_fault_plan("worker_crash:p=0.5")
        keys = [f"spec-{i}" for i in range(64)]
        first = [plan.should("worker_crash", k) for k in keys]
        again = [plan.should("worker_crash", k) for k in keys]
        assert first == again
        # A fair-ish coin: both outcomes occur across 64 keys.
        assert any(first) and not all(first)

    def test_seed_reshuffles_decisions(self):
        a = parse_fault_plan("worker_crash:p=0.5;seed=1")
        b = parse_fault_plan("worker_crash:p=0.5;seed=2")
        keys = [f"spec-{i}" for i in range(64)]
        assert [a.should("worker_crash", k) for k in keys] \
            != [b.should("worker_crash", k) for k in keys]

    def test_attempts_gate_stops_later_attempts(self):
        plan = parse_fault_plan("worker_crash:p=1,attempts=2")
        assert plan.should("worker_crash", "k", attempt=0)
        assert plan.should("worker_crash", "k", attempt=1)
        assert not plan.should("worker_crash", "k", attempt=2)


class TestActivePlan:
    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT, raising=False)
        assert active_plan() is None

    def test_env_plan_is_parsed_and_memoised(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT, "worker_crash:p=1")
        plan = active_plan()
        assert isinstance(plan, FaultPlan)
        assert active_plan() is plan
        monkeypatch.setenv(ENV_FAULT, "point_hang:p=1")
        assert active_plan().clause("point_hang") is not None


class TestCacheCorruptHook:
    def test_disarmed_hook_leaves_the_file_alone(self, monkeypatch,
                                                 tmp_path):
        monkeypatch.delenv(ENV_FAULT, raising=False)
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"payload")
        assert maybe_corrupt_cache_entry(path, "key") is False
        assert path.read_bytes() == b"payload"

    def test_armed_hook_garbles_the_file(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_FAULT, "cache_corrupt:p=1")
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"payload")
        assert maybe_corrupt_cache_entry(path, "key") is True
        assert path.read_bytes() != b"payload"
