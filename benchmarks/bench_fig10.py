"""Fig 10 — execution time against the or1k CPU.

Paper: the context-aware mapping performs almost like the basic
mapping while using less context memory; average ~10x speedup over
the CPU, max 22x (HET1) / 19x (HET2), min 5x.
"""

from repro.eval.experiments import fig10_data
from repro.eval.reporting import render_fig10


def test_fig10_vs_cpu(benchmark, record_result):
    chart = benchmark.pedantic(fig10_data, rounds=1, iterations=1)
    record_result("fig10", render_fig10(chart))
    for kernel, rows in chart.items():
        basic = rows["basic_hom64"]
        assert basic["speedup"] > 1.0, f"{kernel}: CGRA must beat CPU"
        for label in ("aware_het1", "aware_het2"):
            entry = rows[label]
            if entry["cycles"] is None:
                continue
            # Aware mapping performs "almost similarly" to basic.
            assert entry["cycles"] <= basic["cycles"] * 1.6, (
                f"{kernel}/{label} too slow vs basic")
