"""Fig 7 — latency with basic + ACMAP + ECMAP.

Paper: the exact pruning recovers most configurations; the remaining
failures are the three big kernels on HOM32, where every load-store
tile is over-constrained, and the latency penalty under constraint
stays small.
"""

from repro.eval.experiments import LATENCY_CONFIGS, latency_figure_data
from repro.eval.reporting import render_latency_figure


def test_fig7_plus_ecmap(benchmark, record_result):
    chart = benchmark.pedantic(latency_figure_data, args=("ecmap",),
                               rounds=1, iterations=1)
    record_result(
        "fig7", render_latency_figure("Fig 7 — basic + ACMAP + ECMAP",
                                      chart, LATENCY_CONFIGS))
    mapped = sum(1 for bars in chart.values()
                 for value in bars.values() if value > 0)
    assert mapped >= 20, "ECMAP should recover most configurations"
