"""Fig 5 — pnops and moves: weighted vs forward CDFG traversal.

Paper: on the FFT kernel the weighted traversal cuts moves by ~42%
and pnops by ~24% versus the forward traversal; the trend holds for
the other kernels.
"""

from repro.eval.experiments import fig5_data
from repro.eval.reporting import render_fig5
from repro.kernels import PAPER_KERNEL_ORDER


def test_fig5_fft(benchmark, record_result):
    data = benchmark.pedantic(fig5_data, args=("fft",),
                              rounds=1, iterations=1)
    record_result("fig5_fft", render_fig5(data))
    totals = data["totals"]
    # Shape assertion: the weighted traversal must not be worse overall.
    assert totals["weighted_movs"] <= totals["forward_movs"]


def test_fig5_trend_all_kernels(benchmark, record_result):
    def collect():
        rows = []
        for kernel in PAPER_KERNEL_ORDER:
            rows.append((kernel, fig5_data(kernel)["totals"]))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["Fig 5 (trend) — total movs/pnops, weighted vs forward"]
    better = 0
    for kernel, totals in rows:
        lines.append(
            f"  {kernel:14s} movs {totals['forward_movs']:4d} -> "
            f"{totals['weighted_movs']:4d}   pnops "
            f"{totals['forward_pnops']:4d} -> {totals['weighted_pnops']:4d}")
        if (totals["weighted_movs"] + totals["weighted_pnops"]
                <= totals["forward_movs"] + totals["forward_pnops"]):
            better += 1
    lines.append(f"  weighted no worse on {better}/"
                 f"{len(PAPER_KERNEL_ORDER)} kernels")
    record_result("fig5_trend", "\n".join(lines))
    assert better >= len(PAPER_KERNEL_ORDER) // 2
