"""Ablation — stochastic pruning cap vs mapping quality and time.

The paper prunes partial mappings "depending on a threshold function"
to keep compilation tractable; this ablation sweeps the survivor cap
and reports the quality/time trade-off the design point sits on.
"""

import time

from repro.arch.configs import get_config
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel

CAPS = (2, 4, 8, 12, 20)


def sweep(kernel_name="convolution", config="HET1"):
    rows = []
    for cap in CAPS:
        kernel = get_kernel(kernel_name)
        started = time.perf_counter()
        result = map_kernel(kernel.cdfg, get_config(config),
                            FlowOptions.aware(prune_cap=cap))
        seconds = time.perf_counter() - started
        total_latency = sum(b.length for b in result.blocks.values())
        rows.append((cap, result.total_movs, total_latency,
                     max(result.tile_words()), seconds))
    return rows


def test_pruning_cap_ablation(benchmark, record_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — stochastic pruning cap (convolution @ HET1)",
             "cap  movs  sum(L)  max words  seconds"]
    for cap, movs, latency, words, seconds in rows:
        lines.append(f"{cap:3d}  {movs:4d}  {latency:6d}  {words:9d}"
                     f"  {seconds:7.2f}")
    record_result("ablation_pruning", "\n".join(lines))
    # Every cap must still produce a valid mapping.
    assert len(rows) == len(CAPS)
