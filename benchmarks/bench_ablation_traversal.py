"""Ablation — traversal order across the whole kernel suite.

Fig 5 shows one kernel; this ablation quantifies the weighted
traversal's MOV/PNOP effect on every kernel, which is the mechanism
behind the Table II energy gains.
"""

from repro.eval.experiments import compile_point
from repro.kernels import PAPER_KERNEL_ORDER


def sweep():
    rows = []
    for kernel in PAPER_KERNEL_ORDER:
        forward, _ = compile_point(kernel, "HOM64", "basic")
        weighted, _ = compile_point(kernel, "HOM64", "weighted")
        rows.append((kernel,
                     forward.total_movs, weighted.total_movs,
                     forward.total_pnops, weighted.total_pnops))
    return rows


def test_traversal_ablation(benchmark, record_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — weighted vs forward traversal (HOM64)",
             "kernel          movs fwd/wgt   pnops fwd/wgt"]
    for kernel, fm, wm, fp, wp in rows:
        lines.append(f"{kernel:14s}  {fm:4d}/{wm:4d}      {fp:4d}/{wp:4d}")
    record_result("ablation_traversal", "\n".join(lines))
    assert len(rows) == len(PAPER_KERNEL_ORDER)
