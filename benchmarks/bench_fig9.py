"""Fig 9 — compilation time of each added flow step.

Paper: the full context-memory aware flow averages ~1.8x the basic
flow's compile time (17s -> 30s on their machine); the penalty grows
step by step as ACMAP, ECMAP and CAB are added.
"""

from repro.eval.experiments import fig9_data
from repro.eval.reporting import render_fig9


def test_fig9_compile_time(benchmark, record_result):
    data = benchmark.pedantic(fig9_data, rounds=1, iterations=1)
    record_result("fig9", render_fig9(data))
    # Shape: the aware steps cost more compile time than the basic flow.
    assert data["normalized"]["full"] >= 1.0
