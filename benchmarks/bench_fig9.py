"""Fig 9 — compilation time of each added flow step.

Paper: the full context-memory aware flow averages ~1.8x the basic
flow's compile time (17s -> 30s on their machine); the penalty grows
step by step as ACMAP, ECMAP and CAB are added.

Besides the rendered figure, the per-kernel compile times are written
to ``benchmarks/results/fig9_bench.json`` in the shared ``repro.perf``
benchmark schema (the same document ``repro bench`` emits and
``BENCH_*.json`` commits at the repo root), so the Fig 9 artefacts and
the repo's perf trajectory are one comparable series — compare
case-for-case with matching axes (Fig 9 times the aware variants on
HET1 and the basic flow on HOM64)::

    python -m repro bench --configs HET1 --variants full \
        --compare benchmarks/results/fig9_bench.json
"""

import json

from repro.eval.experiments import fig9_data
from repro.eval.reporting import render_fig9
from repro.perf import bench_payload, parse_bench_payload


def fig9_bench_document(data, config_name="HET1", kernels=None):
    """Reshape Fig 9's per-kernel timings into the perf schema.

    Fig 9 compiles the basic flow for HOM64 (its paper target) and the
    aware variants for ``config_name``; each compile is a single
    unwarmed run — exactly what the figure reports.  ``kernels`` must
    be the kernel tuple ``fig9_data`` was called with (its
    ``per_kernel`` lists are in that order); default: the full suite.
    """
    from repro.kernels import PAPER_KERNEL_ORDER

    if kernels is None:
        kernels = PAPER_KERNEL_ORDER
    cases = []
    for variant, seconds_list in data["per_kernel"].items():
        if len(seconds_list) != len(kernels):
            raise ValueError(
                f"{variant}: {len(seconds_list)} timings for "
                f"{len(kernels)} kernels — pass the kernel tuple "
                f"fig9_data was called with")
        config = "HOM64" if variant == "basic" else config_name
        for kernel, seconds in zip(kernels, seconds_list):
            cases.append({
                "case": f"{kernel}@{config}/{variant}",
                "kernel": kernel,
                "config": config,
                "variant": variant,
                "seconds": round(seconds, 6),
                "samples": [round(seconds, 6)],
                "counts": {"mapped": True},
            })
    return bench_payload(cases, warmup=0, repeat=1, reducer="min")


def test_fig9_compile_time(benchmark, record_result, results_dir):
    data = benchmark.pedantic(fig9_data, rounds=1, iterations=1)
    record_result("fig9", render_fig9(data))
    document = parse_bench_payload(fig9_bench_document(data))
    (results_dir / "fig9_bench.json").write_text(
        json.dumps(document, indent=2) + "\n")
    # Shape: the aware steps cost more compile time than the basic flow.
    assert data["normalized"]["full"] >= 1.0
