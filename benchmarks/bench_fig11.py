"""Fig 11 — area comparison with the CPU.

Paper: the HOM64 CGRA is about twice the CPU area; the heterogeneous
configurations reduce the context-memory share and shrink the total
(paper: ~1.5x; our model, anchored on CM = 40% of a PE, lands at
~1.75x — see EXPERIMENTS.md for the discussion).
"""

from repro.eval.experiments import fig11_data
from repro.eval.reporting import render_fig11


def test_fig11_area(benchmark, record_result):
    data = benchmark.pedantic(fig11_data, rounds=1, iterations=1)
    record_result("fig11", render_fig11(data))
    assert 1.7 <= data["HOM64"]["ratio"] <= 2.3
    for name in ("HOM32", "HET1", "HET2"):
        assert data[name]["ratio"] < data["HOM64"]["ratio"]
    # The CM words ordering must show up in silicon area.
    assert data["HET1"]["total"] > data["HET2"]["total"]
