"""Fig 8 — latency with the full flow (+ CAB).

Paper: constraint-aware binding improves the HET2 configuration in
particular; with the full flow every kernel maps on HET1/HET2 and the
latency penalty versus the unconstrained baseline remains small.
"""

from repro.eval.experiments import LATENCY_CONFIGS, latency_figure_data
from repro.eval.reporting import render_latency_figure


def test_fig8_full_flow(benchmark, record_result):
    chart = benchmark.pedantic(latency_figure_data, args=("full",),
                               rounds=1, iterations=1)
    record_result(
        "fig8", render_latency_figure(
            "Fig 8 — basic + ACMAP + ECMAP + CAB", chart,
            LATENCY_CONFIGS))
    # Headline shape: the full flow maps every kernel on both
    # heterogeneous configurations (that is what enables Table II).
    for kernel, bars in chart.items():
        assert bars["HET1"] > 0, f"{kernel} must map on HET1"
        assert bars["HET2"] > 0, f"{kernel} must map on HET2"
        # And the latency stays within a small factor of the baseline.
        assert bars["HET1"] < 3.0
        assert bars["HET2"] < 3.0
