"""Fig 6 — latency with basic + ACMAP, per CM configuration.

Paper: the approximate pruning alone finds no solution for matrix
multiplication, the non-separable filter and the FFT on the
constrained configurations (zero bars); convolution and the separable
filter map on HOM32/HET1 but not HET2.
"""

from repro.eval.experiments import LATENCY_CONFIGS, latency_figure_data
from repro.eval.reporting import render_latency_figure


def test_fig6_basic_plus_acmap(benchmark, record_result):
    chart = benchmark.pedantic(latency_figure_data, args=("acmap",),
                               rounds=1, iterations=1)
    record_result(
        "fig6", render_latency_figure("Fig 6 — basic + ACMAP", chart,
                                      LATENCY_CONFIGS))
    # Shape: every kernel still maps on the permissive HOM64.
    for kernel, bars in chart.items():
        assert bars["HOM64"] > 0, f"{kernel} lost HOM64 under ACMAP"
