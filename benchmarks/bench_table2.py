"""Table II — energy (uJ) for every kernel on CPU / HOM64 / HET1 / HET2.

Paper: the context-aware mapping on the heterogeneous configurations
gains on average 2.3x over the basic mapping on HOM64 (max 3.1x, min
1.4x) and 14x over the CPU (max 23x, min 5x).
"""

from repro.eval.experiments import table2_data
from repro.eval.reporting import render_table2


def test_table2_energy(benchmark, record_result):
    table = benchmark.pedantic(table2_data, rounds=1, iterations=1)
    record_result("table2", render_table2(table))
    for kernel, row in table.items():
        basic = row["basic_hom64"]
        assert basic["uj"] is not None, f"{kernel} must map on HOM64"
        for label in ("aware_het1", "aware_het2"):
            entry = row[label]
            if entry["uj"] is None:
                continue
            # The aware mapping must never cost MORE energy than basic.
            assert entry["uj"] <= basic["uj"] * 1.05, (
                f"{kernel}/{label}: aware mapping wastes energy")
            # And the CGRA must beat the CPU.
            assert entry["gain_vs_cpu"] > 1.0
