"""Fig 2 — context-usage distribution of a context-unaware mapping.

The paper's Fig 2 shows matrix multiplication mapped by the basic
(context-unaware) flow: load-store tiles nearly full, most other
tiles' context memories largely unused.  This benchmark regenerates
that usage chart and quantifies the imbalance.
"""

from repro.arch.configs import get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import usage_chart
from repro.kernels import get_kernel
from repro.mapping.flow import FlowOptions, map_kernel


def build_chart():
    kernel = get_kernel("matmul")
    mapping = map_kernel(kernel.cdfg, get_config("HOM64"),
                         FlowOptions.basic())
    program = assemble(mapping, kernel.cdfg, enforce_fit=False)
    cgra = program.cgra
    lsu_words = [program.tile_words(t) for t in cgra.lsu_tiles]
    other_words = [program.tile_words(t) for t in range(cgra.n_tiles)
                   if t not in cgra.lsu_tiles]
    return program, lsu_words, other_words


def test_fig2_context_distribution(benchmark, record_result):
    program, lsu_words, other_words = benchmark.pedantic(
        build_chart, rounds=1, iterations=1)
    text = "\n".join([
        "Fig 2 — matmul under the context-unaware mapping (HOM64)",
        usage_chart(program),
        f"load-store tiles: avg {sum(lsu_words) / len(lsu_words):.1f} "
        f"words, other tiles: avg "
        f"{sum(other_words) / len(other_words):.1f} words",
    ])
    record_result("fig2", text)
    # The paper's point: memory traffic makes the LS tiles the
    # hot spots of a context-unaware mapping.
    assert (sum(lsu_words) / len(lsu_words)
            > sum(other_words) / len(other_words))
