"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one figure or table of the paper,
prints it, and writes it to ``benchmarks/results/`` so the artefacts
survive the pytest capture.  Mapping runs are expensive and
deterministic, so benchmarks use single-round pedantic timing.

The figures share most of their experiment points, so the harness can
prewarm the whole sweep once through the parallel runtime engine
instead of letting each figure map its points serially:

- ``REPRO_BENCH_WORKERS=N`` (N > 1) prefetches every point the
  figure drivers consume over N worker processes before the first
  benchmark runs;
- ``REPRO_BENCH_SHARD=i/N`` prewarms only shard *i* of the point set
  (deterministic cost-balanced partition), so N machines sharing a
  cache directory can split the prewarm between them;
- the persistent result cache (``~/.cache/repro`` or
  ``$REPRO_CACHE_DIR``) is consulted and filled during the prewarm
  unless ``REPRO_BENCH_NO_CACHE`` is set.

Fig 9 measures compile *time* and always re-maps serially — cached or
parallel timings would distort it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def prewarm_experiment_points():
    """Batch-compute the shared experiment points before any figure.

    A no-op unless ``REPRO_BENCH_WORKERS`` asks for parallelism, so a
    single-figure run still computes only the points it needs.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    shard_env = os.environ.get("REPRO_BENCH_SHARD")
    if workers <= 1 and not shard_env:
        return
    from repro.eval.experiments import figure_specs, prefetch_points
    from repro.runtime.cache import ResultCache

    specs = figure_specs()
    if shard_env:
        from repro.errors import ReproError
        from repro.runtime.shard import parse_shard, shard_specs
        if os.environ.get("REPRO_BENCH_NO_CACHE"):
            # Same guard as `repro sweep --shard --no-cache`: a
            # shard's only lasting output is the shared cache.
            raise ReproError(
                "REPRO_BENCH_SHARD with REPRO_BENCH_NO_CACHE "
                "discards the prewarm; unset one of them")
        specs = shard_specs(specs, *parse_shard(shard_env))
    cache = (None if os.environ.get("REPRO_BENCH_NO_CACHE")
             else ResultCache())
    prefetch_points(specs, workers=workers, cache=cache)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered figure/table to benchmarks/results/<name>.txt."""

    def _record(name, text):
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return _record
