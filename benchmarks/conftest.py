"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one figure or table of the paper,
prints it, and writes it to ``benchmarks/results/`` so the artefacts
survive the pytest capture.  Mapping runs are expensive and
deterministic, so benchmarks use single-round pedantic timing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered figure/table to benchmarks/results/<name>.txt."""

    def _record(name, text):
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return _record
