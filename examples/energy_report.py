#!/usr/bin/env python3
"""Energy deep-dive for one kernel: where do the joules go?

Reproduces a single row of Table II with full component breakdowns —
context memory, compute, operands, leakage — for the CPU, the basic
mapping on HOM64, and the context-aware mapping on HET1/HET2.  The
breakdown makes the paper's argument visible: the 64-word context
memories dominate, and the aware mapping shrinks exactly that term.
"""

import sys

from repro.eval.experiments import cpu_point, execute_point


def report(kernel_name):
    print(f"=== {kernel_name} ===")
    cpu_cycles, cpu_energy = cpu_point(kernel_name)
    print(f"\nCPU (or1k @ -O3): {cpu_cycles} cycles, "
          f"{cpu_energy.total_uj:.4f} uJ")
    for part, pj in sorted(cpu_energy.parts.items()):
        print(f"  {part:15s} {pj / 1e6:8.4f} uJ "
              f"({cpu_energy.fraction(part):5.1%})")
    for label, config, variant in (
            ("basic @ HOM64", "HOM64", "basic"),
            ("aware @ HET1", "HET1", "full"),
            ("aware @ HET2", "HET2", "full")):
        point = execute_point(kernel_name, config, variant)
        if not point.mapped:
            print(f"\n{label}: no mapping ({point.error})")
            continue
        energy = point.energy
        gain = cpu_energy.total_uj / energy.total_uj
        print(f"\n{label}: {point.cycles} cycles, "
              f"{energy.total_uj:.4f} uJ ({gain:.1f}x vs CPU)")
        for part, pj in sorted(energy.parts.items()):
            print(f"  {part:15s} {pj / 1e6:8.4f} uJ "
                  f"({energy.fraction(part):5.1%})")


def main():
    kernel = sys.argv[1] if len(sys.argv) > 1 else "fir"
    report(kernel)


if __name__ == "__main__":
    main()
