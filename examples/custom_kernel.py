#!/usr/bin/env python3
"""Map a new kernel the paper never evaluated: sum of absolute
differences (SAD), the motion-estimation workhorse.

Demonstrates the full user journey on fresh code: build a CDFG with
the DSL (unrolled window, tree reduction), compare the basic and the
context-aware flows on per-tile context usage, and verify the aware
mapping end to end on the simulator.
"""

import numpy as np

from repro import map_kernel, get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import usage_chart
from repro.ir.builder import KernelBuilder
from repro.kernels.util import tree_sum
from repro.mapping.flow import FlowOptions
from repro.sim.cgra import CGRASimulator

BLOCK = 4       # 4x4 SAD window
FRAME = 8       # 8x8 search frame
POSITIONS = FRAME - BLOCK + 1


def build_sad_kernel():
    k = KernelBuilder("sad")
    ref = k.array_input("ref", BLOCK * BLOCK)
    frame = k.array_input("frame", FRAME * FRAME)
    out = k.array_output("out", POSITIONS * POSITIONS)
    with k.loop("dy", 0, POSITIONS) as dy:
        with k.loop("dx", 0, POSITIONS) as dx:
            dyv = k.get_symbol("dy")
            anchor = dyv * FRAME + dx
            terms = []
            for by in range(BLOCK):
                for bx in range(BLOCK):
                    pixel = k.load(frame.at(anchor + (by * FRAME + bx)))
                    target = k.load(ref.at(by * BLOCK + bx))
                    terms.append(abs(pixel - target))
            k.store(out.at(dyv * POSITIONS + dx), tree_sum(terms))
    return k.finish()


def reference_sad(ref, frame):
    out = []
    for dy in range(POSITIONS):
        for dx in range(POSITIONS):
            total = 0
            for by in range(BLOCK):
                for bx in range(BLOCK):
                    total += abs(frame[(dy + by) * FRAME + dx + bx]
                                 - ref[by * BLOCK + bx])
            out.append(total)
    return out


def main():
    cdfg = build_sad_kernel()
    print(f"kernel: {cdfg}")

    basic = map_kernel(cdfg, get_config("HOM64"), FlowOptions.basic())
    aware = map_kernel(cdfg, get_config("HET2"), FlowOptions.aware())
    print("\nbasic flow on HOM64:")
    print(usage_chart(assemble(basic, cdfg)))
    print("\ncontext-aware flow on HET2 (half the context memory):")
    program = assemble(aware, cdfg)
    print(usage_chart(program))

    rng = np.random.default_rng(3)
    ref = [int(v) for v in rng.integers(0, 256, BLOCK * BLOCK)]
    frame = [int(v) for v in rng.integers(0, 256, FRAME * FRAME)]
    memory = [0] * cdfg.memory_size
    ref_base = cdfg.regions["ref"]["base"]
    frame_base = cdfg.regions["frame"]["base"]
    memory[ref_base:ref_base + len(ref)] = ref
    memory[frame_base:frame_base + len(frame)] = frame

    run = CGRASimulator(program, memory).run()
    got = run.region(cdfg, "out")
    expected = reference_sad(ref, frame)
    assert got == expected, "SAD mismatch"
    best = min(range(len(got)), key=got.__getitem__)
    print(f"\nSAD verified over {len(got)} positions in "
          f"{run.cycles} cycles; best match at position "
          f"({best // POSITIONS}, {best % POSITIONS})")


if __name__ == "__main__":
    main()
