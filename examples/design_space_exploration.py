#!/usr/bin/env python3
"""Design-space exploration: how small can the context memories go?

The paper's motivation: context memories dominate PE area and energy,
so size them for the application domain instead of over-provisioning.
This script sweeps homogeneous CM depths for each paper kernel, finds
the smallest depth the context-aware flow can still map, and prints
the area saved versus the HOM64 baseline.
"""

from repro.arch.configs import make_cgra
from repro.errors import UnmappableError
from repro.kernels import PAPER_KERNEL_ORDER, get_kernel
from repro.mapping.flow import FlowOptions, map_kernel
from repro.power.area import AreaModel

DEPTHS = (8, 16, 24, 32, 48, 64)


def minimum_depth(kernel_name):
    """Smallest homogeneous CM depth that still maps, plus its stats."""
    for depth in DEPTHS:
        cgra = make_cgra(f"HOM{depth}", cm_depths=[depth] * 16)
        kernel = get_kernel(kernel_name)
        try:
            result = map_kernel(kernel.cdfg, cgra,
                                FlowOptions.aware(max_attempts=10))
        except UnmappableError:
            continue
        return depth, result
    return None, None


def main():
    model = AreaModel()
    baseline = model.cgra_total(make_cgra("HOM64", cm_depths=[64] * 16))
    print(f"{'kernel':14s} {'min CM':>7s} {'max words':>10s} "
          f"{'area mm^2':>10s} {'vs HOM64':>9s}")
    for name in PAPER_KERNEL_ORDER:
        depth, result = minimum_depth(name)
        if depth is None:
            print(f"{name:14s} {'> 64':>7s}")
            continue
        cgra = make_cgra(f"HOM{depth}", cm_depths=[depth] * 16)
        area = model.cgra_total(cgra)
        print(f"{name:14s} {depth:7d} {max(result.tile_words()):10d} "
              f"{area:10.3f} {area / baseline:8.1%}")
    print("\nSmaller context memories -> smaller, lower-leakage array;")
    print("this sweep is the sizing step the paper's flow enables.")


if __name__ == "__main__":
    main()
