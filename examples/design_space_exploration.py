#!/usr/bin/env python3
"""Design-space exploration: how small can the context memories go?

The paper's motivation: context memories dominate PE area and energy,
so size them for the application domain instead of over-provisioning.
This script sweeps homogeneous CM depths for each paper kernel, finds
the smallest depth the context-aware flow can still map, and prints
the area saved versus the HOM64 baseline.

It is a thin client of the :mod:`repro.dse` subsystem: the depth
ladder, the per-rung specs and the early-exit minimum-depth search
all live there (``repro.dse.space`` / ``repro.dse.runner``), and the
general tool — Pareto frontiers over heterogeneous spaces, pluggable
search strategies — is ``python -m repro explore``.  What this
example keeps is the paper-shaped narrative: one table, smallest
mappable depth per kernel, area versus HOM64.

Rounds run through the parallel runtime (``--workers N``) and
*stream*: a one-line verdict is printed the moment a kernel's attempt
lands.  Completed points persist in the result cache
(``~/.cache/repro`` or ``$REPRO_CACHE_DIR``), so re-running only maps
new points.  ``--shard i/N`` prewarms one deterministic slice of the
full depth grid into a shared cache directory; after all N shards
have run, an unsharded re-run answers entirely from cache.
"""

import argparse
import sys

from repro.arch.configs import make_cgra
from repro.dse.runner import minimum_ladder_depths
from repro.dse.space import DEPTH_LADDER, ladder_grid_specs
from repro.errors import ReproError
from repro.kernels import PAPER_KERNEL_ORDER
from repro.power.area import AreaModel
from repro.runtime import (
    ResultCache,
    parse_shard,
    run_sweep,
    shard_specs,
)
from repro.runtime.sweep import DETERMINISTIC_ERRORS


def stream_progress(update):
    """Per-point narration: verdicts land as workers finish them."""
    print(f"    {update.describe()}", file=sys.stderr, flush=True)


def prewarm_shard(workers, cache, shard):
    """Compute one shard of the *full* depth × kernel grid.

    The adaptive early-exit ladder cannot run per-shard: which
    kernels are "resolved" depends on points another machine owns, so
    a sharded ladder could report a too-high minimum as if it were
    the answer.  Instead, shard mode computes its slice of the whole
    grid into the shared cache; once every shard has run, an
    unsharded re-run resolves the ladder entirely from cache hits.
    """
    grid = ladder_grid_specs(PAPER_KERNEL_ORDER, DEPTH_LADDER)
    # Plain (cache-blind) sharding on purpose: shards may run at
    # different times, and cache-aware assignment is only coherent
    # when every producer sees the same cache state.
    specs = shard_specs(grid, *shard)
    result = run_sweep(specs, workers=workers, cache=cache,
                       progress=stream_progress)
    for spec, point in zip(result.specs, result.points):
        if point.error not in DETERMINISTIC_ERRORS:
            # A crash is never cached, so this shard's contribution
            # would silently be missing — fail loudly, like the
            # unsharded ladder does.
            raise ReproError(f"{spec.describe()}: {point.error}")
    print(f"shard {shard[0]}/{shard[1]}: {result.summary()}")
    print("prewarm only — re-run without --shard once every shard "
          "has finished to get the minimum-depth table.")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="prewarm only shard I of N of the full "
                             "depth grid into the shared cache "
                             "($REPRO_CACHE_DIR), then exit; re-run "
                             "unsharded for the table")
    args = parser.parse_args(argv)

    if args.shard and args.no_cache:
        # Shard mode's only output *is* the shared cache; without it
        # every mapped point would be silently thrown away.
        parser.error("--shard requires the cache (drop --no-cache)")
    cache = None if args.no_cache else ResultCache()
    if args.shard:
        prewarm_shard(args.workers, cache, parse_shard(args.shard))
        return

    def round_report(depth, result):
        print(f"depth {depth:2d}: {result.summary()}")

    smallest = minimum_ladder_depths(
        PAPER_KERNEL_ORDER, DEPTH_LADDER, workers=args.workers,
        cache=cache, progress=stream_progress,
        round_report=round_report)
    print()
    model = AreaModel()
    baseline = model.cgra_total(make_cgra("HOM64", cm_depths=[64] * 16))
    print(f"{'kernel':14s} {'min CM':>7s} {'max words':>10s} "
          f"{'area mm^2':>10s} {'vs HOM64':>9s}")
    for name in PAPER_KERNEL_ORDER:
        if name not in smallest:
            print(f"{name:14s} {'> 64':>7s}")
            continue
        depth, point = smallest[name]
        cgra = make_cgra(f"HOM{depth}", cm_depths=[depth] * 16)
        area = model.cgra_total(cgra)
        print(f"{name:14s} {depth:7d} "
              f"{max(point.mapping.tile_words()):10d} "
              f"{area:10.3f} {area / baseline:8.1%}")
    print("\nSmaller context memories -> smaller, lower-leakage array;")
    print("this sweep is the sizing step the paper's flow enables.")


if __name__ == "__main__":
    main()
