#!/usr/bin/env python3
"""Design-space exploration: how small can the context memories go?

The paper's motivation: context memories dominate PE area and energy,
so size them for the application domain instead of over-provisioning.
This script sweeps homogeneous CM depths for each paper kernel, finds
the smallest depth the context-aware flow can still map, and prints
the area saved versus the HOM64 baseline.

The exploration runs depth by depth through the parallel runtime
engine: each round batches all still-unresolved kernels at the next
depth (``--workers N`` fans them out over N processes) and a kernel
drops out at its first mappable depth, so no work is spent on depths
above a kernel's answer.  Each round *streams*: a one-line verdict is
printed the moment a kernel's attempt lands, rather than after the
round's slowest mapping.  Completed points persist in the result
cache (``~/.cache/repro`` or ``$REPRO_CACHE_DIR``), so re-running
the exploration only maps new points.  ``--shard i/N`` prewarms one
deterministic slice of the full depth grid into a shared cache
directory; after all N shards have run, an unsharded re-run answers
entirely from cache.
"""

import argparse
import sys

from repro.arch.configs import make_cgra
from repro.errors import ReproError
from repro.kernels import PAPER_KERNEL_ORDER
from repro.mapping.flow import FlowOptions
from repro.power.area import AreaModel
from repro.runtime import (
    PointSpec,
    ResultCache,
    parse_shard,
    run_sweep,
    shard_specs,
)
from repro.runtime.sweep import DETERMINISTIC_ERRORS

DEPTHS = (8, 16, 24, 32, 48, 64)


def depth_spec(kernel, depth):
    return PointSpec(kernel, f"HOM{depth}", "full",
                     options=FlowOptions.aware(max_attempts=10),
                     cm_depths=(depth,) * 16)


def stream_progress(update):
    """Per-point narration: verdicts land as workers finish them."""
    print(f"    {update.describe()}", file=sys.stderr, flush=True)


def prewarm_shard(workers, cache, shard):
    """Compute one shard of the *full* depth × kernel grid.

    The adaptive early-exit ladder cannot run per-shard: which
    kernels are "resolved" depends on points another machine owns, so
    a sharded ladder could report a too-high minimum as if it were
    the answer.  Instead, shard mode computes its slice of the whole
    grid into the shared cache; once every shard has run, an
    unsharded re-run resolves the ladder entirely from cache hits.
    """
    grid = [depth_spec(kernel, depth)
            for depth in DEPTHS for kernel in PAPER_KERNEL_ORDER]
    specs = shard_specs(grid, *shard)
    result = run_sweep(specs, workers=workers, cache=cache,
                       progress=stream_progress)
    for spec, point in zip(result.specs, result.points):
        if point.error not in DETERMINISTIC_ERRORS:
            # A crash is never cached, so this shard's contribution
            # would silently be missing — fail loudly, like the
            # unsharded ladder does.
            raise ReproError(f"{spec.describe()}: {point.error}")
    print(f"shard {shard[0]}/{shard[1]}: {result.summary()}")
    print("prewarm only — re-run without --shard once every shard "
          "has finished to get the minimum-depth table.")


def minimum_depths(workers, cache):
    """Per kernel: (smallest mappable depth, its point).

    Ascends the depth ladder in parallel rounds; kernels that map
    leave the pool, exactly like the classic serial early-exit search
    but with every round's attempts running concurrently.
    """
    remaining = list(PAPER_KERNEL_ORDER)
    smallest = {}
    for depth in DEPTHS:
        if not remaining:
            break
        specs = [depth_spec(k, depth) for k in remaining]
        result = run_sweep(specs, workers=workers, cache=cache,
                           progress=stream_progress)
        print(f"depth {depth:2d}: {result.summary()}")
        for spec, point in zip(result.specs, result.points):
            if point.error not in DETERMINISTIC_ERRORS:
                # "Does not map at this depth" is an answer; a crash
                # (e.g. a soundness mismatch) is not — fail loudly.
                raise ReproError(f"{spec.describe()}: {point.error}")
            if point.mapped:
                smallest[spec.kernel_name] = (depth, point)
        remaining = [k for k in remaining if k not in smallest]
    return smallest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="prewarm only shard I of N of the full "
                             "depth grid into the shared cache "
                             "($REPRO_CACHE_DIR), then exit; re-run "
                             "unsharded for the table")
    args = parser.parse_args(argv)

    if args.shard and args.no_cache:
        # Shard mode's only output *is* the shared cache; without it
        # every mapped point would be silently thrown away.
        parser.error("--shard requires the cache (drop --no-cache)")
    cache = None if args.no_cache else ResultCache()
    if args.shard:
        prewarm_shard(args.workers, cache, parse_shard(args.shard))
        return
    smallest = minimum_depths(args.workers, cache)
    print()
    model = AreaModel()
    baseline = model.cgra_total(make_cgra("HOM64", cm_depths=[64] * 16))
    print(f"{'kernel':14s} {'min CM':>7s} {'max words':>10s} "
          f"{'area mm^2':>10s} {'vs HOM64':>9s}")
    for name in PAPER_KERNEL_ORDER:
        if name not in smallest:
            print(f"{name:14s} {'> 64':>7s}")
            continue
        depth, point = smallest[name]
        cgra = make_cgra(f"HOM{depth}", cm_depths=[depth] * 16)
        area = model.cgra_total(cgra)
        print(f"{name:14s} {depth:7d} "
              f"{max(point.mapping.tile_words()):10d} "
              f"{area:10.3f} {area / baseline:8.1%}")
    print("\nSmaller context memories -> smaller, lower-leakage array;")
    print("this sweep is the sizing step the paper's flow enables.")


if __name__ == "__main__":
    main()
