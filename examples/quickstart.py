#!/usr/bin/env python3
"""Quickstart: write a kernel, map it, run it, check it.

Builds a small dot-product kernel with the DSL, maps it onto the HET1
configuration with the context-memory aware flow, assembles the
per-tile contexts, simulates the CGRA cycle by cycle, and verifies the
result against plain Python.
"""

import numpy as np

from repro import map_kernel, get_config
from repro.codegen.assembler import assemble
from repro.codegen.listing import usage_chart
from repro.ir.builder import KernelBuilder
from repro.sim.cgra import CGRASimulator

N = 16


def build_dot_kernel():
    k = KernelBuilder("dot")
    a = k.array_input("a", N)
    b = k.array_input("b", N)
    out = k.array_output("out", 1)
    acc = k.symbol_var("acc", 0)
    with k.loop("i", 0, N) as i:
        k.set(acc, k.get(acc) + k.load(a.at(i)) * k.load(b.at(i)))
    k.store(out.at(0), k.get(acc))
    return k.finish()


def main():
    cdfg = build_dot_kernel()
    print(f"kernel: {cdfg}")

    cgra = get_config("HET1")
    mapping = map_kernel(cdfg, cgra, context_aware=True)
    print(mapping.summary())

    program = assemble(mapping, cdfg)
    print(usage_chart(program))

    rng = np.random.default_rng(0)
    a = [int(v) for v in rng.integers(-100, 100, N)]
    b = [int(v) for v in rng.integers(-100, 100, N)]
    memory = [0] * cdfg.memory_size
    a_base = cdfg.regions["a"]["base"]
    b_base = cdfg.regions["b"]["base"]
    memory[a_base:a_base + N] = a
    memory[b_base:b_base + N] = b

    run = CGRASimulator(program, memory).run()
    got = run.region(cdfg, "out")[0]
    expected = sum(x * y for x, y in zip(a, b))
    print(f"\ndot product: CGRA says {got}, python says {expected}")
    print(f"executed in {run.cycles} cycles "
          f"({run.activity.total('issued')} instructions issued)")
    assert got == expected
    print("OK")


if __name__ == "__main__":
    main()
